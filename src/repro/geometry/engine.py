"""Refinement engines: the JTS-vs-GEOS axis of the paper.

Section V.B of the paper traces most of the SpatialSpark-vs-ISP-MC gap to
the spatial-refinement libraries: JTS (used by SpatialSpark) was measured
3.3x / 3.9x faster than GEOS (used by ISP-MC) on the Within predicate,
because "GEOS frequently creates and destroys small objects ... operations
[that] are cache unfriendly and very expensive on modern CPUs".

We reproduce that axis with two engines over the *same* geometry model:

* :class:`FastGeometryEngine` — models JTS as the paper experienced it:
  right-side geometries are prepared once (strip-indexed edge tables,
  contiguous segment buffers) and probed with vectorised kernels.

* :class:`SlowGeometryEngine` — models GEOS's behaviour: every predicate
  call rebuilds fresh per-call coordinate objects (the small-object churn)
  and walks them with a scalar loop, discarding all work afterwards.

Both engines produce identical predicate results; only cost differs — so
swapping engines in a join changes Table 1/2 runtimes but never results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import GeometryError
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import MultiLineString, MultiPolygon
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.prepared import (
    PreparedLineString,
    PreparedPolygon,
    prepare_cached,
)
from repro.geometry.algorithms import distance as distance_mod

__all__ = [
    "EngineCounters",
    "GeometryEngine",
    "FastGeometryEngine",
    "SlowGeometryEngine",
    "create_engine",
]


@dataclass
class EngineCounters:
    """Operation counters a refinement engine accrues.

    ``vertex_ops`` approximates vertices touched; ``allocations``
    approximates transient objects created (the GEOS churn); both feed the
    deterministic cluster cost model so simulated runtimes reflect the
    engines' measured cost asymmetry.
    """

    predicate_calls: int = 0
    vertex_ops: int = 0
    allocations: int = 0

    def merge(self, other: "EngineCounters") -> None:
        """Accumulate another counter set into this one."""
        self.predicate_calls += other.predicate_calls
        self.vertex_ops += other.vertex_ops
        self.allocations += other.allocations

    def reset(self) -> None:
        """Zero all counters."""
        self.predicate_calls = 0
        self.vertex_ops = 0
        self.allocations = 0


class GeometryEngine(Protocol):
    """Interface every refinement engine implements.

    The engine owns preparation (what to cache per right-side geometry)
    and predicate evaluation; the join operators never touch geometry
    internals directly.
    """

    name: str
    counters: EngineCounters

    def prepare(self, geometry: Geometry) -> object:
        """Return an engine-private handle used for subsequent probes."""
        ...

    def point_within(self, point: Point, handle: object) -> bool:
        """Within(point, polygonal-geometry) against a prepared handle."""
        ...

    def point_within_distance(self, point: Point, handle: object, d: float) -> bool:
        """True when the point lies within distance ``d`` of the handle."""
        ...

    def point_distance(self, point: Point, handle: object) -> float:
        """Exact minimum distance from a point to the handle."""
        ...

    def contains_batch_counted(
        self, handle: object, xs, ys
    ) -> tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        """Batched Within: (results, vertex_ops, allocations) per point.

        Counter totals accrued by one batch call equal those of N scalar
        :meth:`point_within` calls; the per-point arrays carry each point's
        share, for schedulers that charge per row.
        """
        ...

    def within_distance_batch_counted(
        self, handle: object, xs, ys, d: float
    ) -> tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        """Batched NearestD threshold test with per-point counter shares."""
        ...

    def distance_batch_counted(
        self, handle: object, xs, ys
    ) -> tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        """Batched exact distance with per-point counter shares."""
        ...


class FastGeometryEngine:
    """Prepared-geometry engine (the JTS-like fast path)."""

    name = "fast"

    def __init__(self) -> None:
        self.counters = EngineCounters()

    def prepare(self, geometry: Geometry) -> object:
        if isinstance(
            geometry, (Polygon, LineString, MultiPolygon, MultiLineString, Point)
        ):
            # Shared identity-keyed cache: tasks probing the same broadcast
            # or tile geometry reuse one strip index instead of rebuilding.
            return prepare_cached(geometry)
        raise GeometryError(f"fast engine cannot prepare {geometry.geometry_type}")

    def point_within(self, point: Point, handle: object) -> bool:
        self.counters.predicate_calls += 1
        if isinstance(handle, PreparedPolygon):
            # Charge a full edge scan: the cost model represents JTS, whose
            # (non-prepared) point-in-polygon walks every ring edge.  Our
            # strip index is faster in wall-clock; simulated tables charge
            # the library the paper actually ran.
            self.counters.vertex_ops += handle.edge_count
            return handle.contains_point(point.x, point.y)
        if isinstance(handle, list):
            for part in handle:
                if self.point_within(point, part):
                    return True
            return False
        raise GeometryError(f"point_within against {type(handle).__name__}")

    def point_within_distance(self, point: Point, handle: object, d: float) -> bool:
        self.counters.predicate_calls += 1
        if isinstance(handle, PreparedLineString):
            # JTS isWithinDistance early-exits; charge segments examined.
            result, examined = handle.within_distance_counted(point.x, point.y, d)
            self.counters.vertex_ops += examined
            return result
        if isinstance(handle, PreparedPolygon):
            self.counters.vertex_ops += handle.edge_count
            if handle.contains_point(point.x, point.y):
                return True
            return (
                distance_mod.distance(point, handle.polygon) <= d
            )
        if isinstance(handle, list):
            for part in handle:
                if self.point_within_distance(point, part, d):
                    return True
            return False
        if isinstance(handle, Point):
            return math.hypot(point.x - handle.x, point.y - handle.y) <= d
        raise GeometryError(f"point_within_distance against {type(handle).__name__}")

    def point_distance(self, point: Point, handle: object) -> float:
        self.counters.predicate_calls += 1
        if isinstance(handle, PreparedLineString):
            self.counters.vertex_ops += len(handle.line.coords)
            return handle.distance_to_point(point.x, point.y)
        if isinstance(handle, PreparedPolygon):
            self.counters.vertex_ops += handle.edge_count
            return distance_mod.distance(point, handle.polygon)
        if isinstance(handle, list):
            return min(self.point_distance(point, part) for part in handle)
        if isinstance(handle, Point):
            return math.hypot(point.x - handle.x, point.y - handle.y)
        raise GeometryError(f"point_distance against {type(handle).__name__}")

    # -- batch kernels ----------------------------------------------------
    #
    # One numpy dispatch refines a whole coordinate batch against a handle.
    # Results are bit-identical to N scalar calls (the prepared kernels
    # evaluate the same IEEE expressions) and the counter totals match,
    # including the early-exit accounting on Multi* handles: a point stops
    # being charged for later parts once an earlier part matched it.

    def contains_batch(self, handle: object, xs, ys) -> np.ndarray:
        """Batched :meth:`point_within` returning a boolean array."""
        return self.contains_batch_counted(handle, xs, ys)[0]

    def within_distance_batch(self, handle: object, xs, ys, d: float) -> np.ndarray:
        """Batched :meth:`point_within_distance` returning a boolean array."""
        return self.within_distance_batch_counted(handle, xs, ys, d)[0]

    def distance_batch(self, handle: object, xs, ys) -> np.ndarray:
        """Batched :meth:`point_distance` returning a float array."""
        return self.distance_batch_counted(handle, xs, ys)[0]

    def contains_batch_counted(self, handle, xs, ys):
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        results, vertex, pred = self._contains_arrays(handle, xs, ys)
        self.counters.predicate_calls += int(pred.sum())
        self.counters.vertex_ops += int(vertex.sum())
        return results, vertex, np.zeros(len(xs), dtype=np.int64)

    def within_distance_batch_counted(self, handle, xs, ys, d):
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        results, vertex, pred = self._within_distance_arrays(handle, xs, ys, d)
        self.counters.predicate_calls += int(pred.sum())
        self.counters.vertex_ops += int(vertex.sum())
        return results, vertex, np.zeros(len(xs), dtype=np.int64)

    def distance_batch_counted(self, handle, xs, ys):
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        results, vertex, pred = self._distance_arrays(handle, xs, ys)
        self.counters.predicate_calls += int(pred.sum())
        self.counters.vertex_ops += int(vertex.sum())
        return results, vertex, np.zeros(len(xs), dtype=np.int64)

    def _contains_arrays(self, handle, xs, ys):
        n = len(xs)
        pred = np.ones(n, dtype=np.int64)
        vertex = np.zeros(n, dtype=np.int64)
        if isinstance(handle, PreparedPolygon):
            vertex += handle.edge_count
            return handle.contains_batch(xs, ys), vertex, pred
        if isinstance(handle, list):
            results = np.zeros(n, dtype=bool)
            active = np.arange(n)
            for part in handle:
                if active.size == 0:
                    break
                hit, part_vertex, part_pred = self._contains_arrays(
                    part, xs[active], ys[active]
                )
                pred[active] += part_pred
                vertex[active] += part_vertex
                results[active[hit]] = True
                active = active[~hit]
            return results, vertex, pred
        raise GeometryError(f"point_within against {type(handle).__name__}")

    def _within_distance_arrays(self, handle, xs, ys, d):
        n = len(xs)
        pred = np.ones(n, dtype=np.int64)
        vertex = np.zeros(n, dtype=np.int64)
        if isinstance(handle, PreparedLineString):
            results, examined = handle.within_distance_batch_counted(xs, ys, d)
            vertex += examined
            return results, vertex, pred
        if isinstance(handle, PreparedPolygon):
            vertex += handle.edge_count
            results = handle.contains_batch(xs, ys)
            for i in np.flatnonzero(~results):
                point = Point(float(xs[i]), float(ys[i]))
                results[i] = distance_mod.distance(point, handle.polygon) <= d
            return results, vertex, pred
        if isinstance(handle, list):
            results = np.zeros(n, dtype=bool)
            active = np.arange(n)
            for part in handle:
                if active.size == 0:
                    break
                hit, part_vertex, part_pred = self._within_distance_arrays(
                    part, xs[active], ys[active], d
                )
                pred[active] += part_pred
                vertex[active] += part_vertex
                results[active[hit]] = True
                active = active[~hit]
            return results, vertex, pred
        if isinstance(handle, Point):
            results = np.fromiter(
                (
                    math.hypot(float(x) - handle.x, float(y) - handle.y) <= d
                    for x, y in zip(xs, ys)
                ),
                dtype=bool,
                count=n,
            )
            return results, vertex, pred
        raise GeometryError(f"point_within_distance against {type(handle).__name__}")

    def _distance_arrays(self, handle, xs, ys):
        n = len(xs)
        pred = np.ones(n, dtype=np.int64)
        vertex = np.zeros(n, dtype=np.int64)
        if isinstance(handle, PreparedLineString):
            vertex += len(handle.line.coords)
            return handle.distance_batch(xs, ys), vertex, pred
        if isinstance(handle, PreparedPolygon):
            vertex += handle.edge_count
            dists = np.empty(n, dtype=np.float64)
            for i in range(n):
                point = Point(float(xs[i]), float(ys[i]))
                dists[i] = distance_mod.distance(point, handle.polygon)
            return dists, vertex, pred
        if isinstance(handle, list):
            best = np.full(n, math.inf)
            for part in handle:
                part_d, part_vertex, part_pred = self._distance_arrays(part, xs, ys)
                pred += part_pred
                vertex += part_vertex
                best = np.minimum(best, part_d)
            return best, vertex, pred
        if isinstance(handle, Point):
            dists = np.fromiter(
                (
                    math.hypot(float(x) - handle.x, float(y) - handle.y)
                    for x, y in zip(xs, ys)
                ),
                dtype=np.float64,
                count=n,
            )
            return dists, vertex, pred
        raise GeometryError(f"point_distance against {type(handle).__name__}")


class _Coordinate:
    """A GEOS-style heap-allocated coordinate.

    GEOS materialises ``Coordinate`` objects during predicate evaluation;
    the slow engine mirrors that by creating one of these per vertex per
    call, which is the cache-unfriendly small-object churn the paper
    blames for the JTS/GEOS gap.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float):
        self.x = x
        self.y = y


class SlowGeometryEngine:
    """Object-churning engine (the GEOS-like slow path).

    ``prepare`` returns the raw geometry; every predicate call then
    materialises throwaway Python-level coordinate objects before running
    a scalar loop — reproducing the allocate/compute/destroy pattern the
    paper identified as GEOS's bottleneck.  The churn factor is real work
    (not a sleep), so wall-clock microbenchmarks show the same 3-4x gap
    the paper measured.
    """

    name = "slow"

    def __init__(self) -> None:
        self.counters = EngineCounters()

    def prepare(self, geometry: Geometry) -> object:
        return geometry

    def _churn_rings(self, polygon: Polygon) -> list[list[_Coordinate]]:
        """Clone every ring into fresh coordinate objects (GEOS-style churn)."""
        rings = []
        for ring in polygon.rings:
            fresh = [_Coordinate(float(x), float(y)) for x, y in ring.coords]
            self.counters.allocations += len(fresh)
            rings.append(fresh)
        return rings

    def _churn_line(self, line: LineString) -> list[_Coordinate]:
        fresh = [_Coordinate(float(x), float(y)) for x, y in line.coords]
        self.counters.allocations += len(fresh)
        return fresh

    def point_within(self, point: Point, handle: object) -> bool:
        self.counters.predicate_calls += 1
        if isinstance(handle, Polygon):
            return self._point_in_churned_polygon(point.x, point.y, handle)
        if isinstance(handle, MultiPolygon):
            return any(
                self._point_in_churned_polygon(point.x, point.y, part)
                for part in handle.parts
                if not part.is_empty
            )
        raise GeometryError(f"point_within against {type(handle).__name__}")

    def _point_in_churned_polygon(self, x: float, y: float, polygon: Polygon) -> bool:
        if polygon.is_empty:
            return False
        rings = self._churn_rings(polygon)
        self.counters.vertex_ops += sum(len(r) for r in rings)
        # GEOS-style: the envelope is re-derived from the freshly built
        # coordinate sequence rather than read from a prepared cache.
        shell = rings[0]
        min_x = min(c.x for c in shell)
        max_x = max(c.x for c in shell)
        min_y = min(c.y for c in shell)
        max_y = max(c.y for c in shell)
        if not (min_x <= x <= max_x and min_y <= y <= max_y):
            return False
        inside = False
        boundary = False
        for ring in rings:
            for i in range(len(ring) - 1):
                a = ring[i]
                b = ring[i + 1]
                x1, y1 = a.x, a.y
                x2, y2 = b.x, b.y
                cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
                if abs(cross) <= 1e-12 * max(abs(x2 - x1) + abs(y2 - y1), 1.0):
                    if min(x1, x2) - 1e-12 <= x <= max(x1, x2) + 1e-12 and (
                        min(y1, y2) - 1e-12 <= y <= max(y1, y2) + 1e-12
                    ):
                        boundary = True
                if (y1 > y) != (y2 > y):
                    x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
                    if x < x_cross:
                        inside = not inside
        return boundary or inside

    def point_within_distance(self, point: Point, handle: object, d: float) -> bool:
        self.counters.predicate_calls += 1
        if isinstance(handle, LineString):
            if handle.envelope.distance_to_point(point.x, point.y) > d:
                return False
            # GEOS computes the full minimum distance, then compares — no
            # early exit (the asymmetry the lion-500 experiment amplifies).
            return self._churned_line_distance(point.x, point.y, handle) <= d
        if isinstance(handle, MultiLineString):
            return any(
                self.point_within_distance(point, part, d)
                for part in handle.parts
                if not part.is_empty
            )
        if isinstance(handle, (Polygon, MultiPolygon)):
            if isinstance(handle, Polygon) and self._point_in_churned_polygon(
                point.x, point.y, handle
            ):
                return True
            return distance_mod.distance(point, handle) <= d
        if isinstance(handle, Point):
            return math.hypot(point.x - handle.x, point.y - handle.y) <= d
        raise GeometryError(f"point_within_distance against {type(handle).__name__}")

    def _churned_line_distance(
        self, px: float, py: float, line: LineString, early_exit_at: float = -1.0
    ) -> float:
        coords = self._churn_line(line)
        self.counters.vertex_ops += len(coords)
        if len(coords) == 1:
            return math.hypot(px - coords[0].x, py - coords[0].y)
        best = math.inf
        for i in range(len(coords) - 1):
            a = coords[i]
            b = coords[i + 1]
            x1, y1 = a.x, a.y
            x2, y2 = b.x, b.y
            dx = x2 - x1
            dy = y2 - y1
            seg_len_sq = dx * dx + dy * dy
            if seg_len_sq == 0.0:
                candidate = math.hypot(px - x1, py - y1)
            else:
                t = ((px - x1) * dx + (py - y1) * dy) / seg_len_sq
                if t < 0.0:
                    t = 0.0
                elif t > 1.0:
                    t = 1.0
                candidate = math.hypot(px - (x1 + t * dx), py - (y1 + t * dy))
            if candidate < best:
                best = candidate
                if 0.0 <= early_exit_at and best <= early_exit_at:
                    break
        return best

    def point_distance(self, point: Point, handle: object) -> float:
        self.counters.predicate_calls += 1
        if isinstance(handle, LineString):
            return self._churned_line_distance(point.x, point.y, handle)
        if isinstance(handle, MultiLineString):
            return min(
                self._churned_line_distance(point.x, point.y, part)
                for part in handle.parts
                if not part.is_empty
            )
        if isinstance(handle, (Polygon, MultiPolygon)):
            return distance_mod.distance(point, handle)
        if isinstance(handle, Point):
            return math.hypot(point.x - handle.x, point.y - handle.y)
        raise GeometryError(f"point_distance against {type(handle).__name__}")

    # -- batch kernels ----------------------------------------------------
    #
    # GEOS has no columnar path: the slow engine satisfies the batch
    # interface with a per-point scalar loop, preserving the JTS/GEOS cost
    # axis (churn and all) while recording each point's counter share.

    def contains_batch(self, handle: object, xs, ys) -> np.ndarray:
        """Batched :meth:`point_within` via the scalar churn loop."""
        return self.contains_batch_counted(handle, xs, ys)[0]

    def within_distance_batch(self, handle: object, xs, ys, d: float) -> np.ndarray:
        """Batched :meth:`point_within_distance` via the scalar churn loop."""
        return self.within_distance_batch_counted(handle, xs, ys, d)[0]

    def distance_batch(self, handle: object, xs, ys) -> np.ndarray:
        """Batched :meth:`point_distance` via the scalar churn loop."""
        return self.distance_batch_counted(handle, xs, ys)[0]

    def contains_batch_counted(self, handle, xs, ys):
        return self._scalar_batch(
            lambda point: self.point_within(point, handle), xs, ys, bool
        )

    def within_distance_batch_counted(self, handle, xs, ys, d):
        return self._scalar_batch(
            lambda point: self.point_within_distance(point, handle, d), xs, ys, bool
        )

    def distance_batch_counted(self, handle, xs, ys):
        return self._scalar_batch(
            lambda point: self.point_distance(point, handle), xs, ys, np.float64
        )

    def _scalar_batch(self, call, xs, ys, dtype):
        n = len(xs)
        results = np.zeros(n, dtype=dtype)
        vertex = np.zeros(n, dtype=np.int64)
        alloc = np.zeros(n, dtype=np.int64)
        counters = self.counters
        for i in range(n):
            vertex_before = counters.vertex_ops
            alloc_before = counters.allocations
            results[i] = call(Point(float(xs[i]), float(ys[i])))
            vertex[i] = counters.vertex_ops - vertex_before
            alloc[i] = counters.allocations - alloc_before
        return results, vertex, alloc


_ENGINES = {
    "fast": FastGeometryEngine,
    "slow": SlowGeometryEngine,
    # Aliases matching the libraries each engine models in the paper.
    "jts": FastGeometryEngine,
    "geos": SlowGeometryEngine,
}


def create_engine(name: str) -> GeometryEngine:
    """Instantiate a refinement engine by name (``fast``/``jts``/``slow``/``geos``)."""
    try:
        factory = _ENGINES[name.lower()]
    except KeyError:
        raise GeometryError(
            f"unknown geometry engine {name!r}; choose from {sorted(_ENGINES)}"
        ) from None
    return factory()
