"""Multi-part geometries and the GeometryCollection container.

Real-world census and ecoregion layers contain multipolygons (islands,
disjoint blocks); the paper's WWF ecoregions especially so.  The refinement
predicates distribute over parts, which these classes implement.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

from repro.errors import GeometryError
from repro.geometry.base import Geometry, GeometryType
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

__all__ = ["MultiPoint", "MultiLineString", "MultiPolygon", "GeometryCollection"]

PartT = TypeVar("PartT", bound=Geometry)


class _MultiGeometry(Geometry):
    """Shared behaviour for homogeneous multi-part geometries."""

    __slots__ = ("parts",)

    _part_type: type = Geometry

    def __init__(self, parts: Iterable[Geometry]):
        super().__init__()
        self.parts = tuple(parts)
        for part in self.parts:
            if not isinstance(part, self._part_type):
                raise GeometryError(
                    f"{type(self).__name__} parts must be {self._part_type.__name__}, "
                    f"got {type(part).__name__}"
                )

    @property
    def is_empty(self) -> bool:
        return all(part.is_empty for part in self.parts)

    @property
    def num_points(self) -> int:
        return sum(part.num_points for part in self.parts)

    def __len__(self) -> int:
        return len(self.parts)

    def __iter__(self):
        return iter(self.parts)

    def __getitem__(self, index: int) -> Geometry:
        return self.parts[index]

    def _compute_envelope(self) -> Envelope:
        envelope = Envelope.empty()
        for part in self.parts:
            envelope = envelope.union(part.envelope)
        return envelope

    def _coordinates_equal(self, other: Geometry) -> bool:
        assert isinstance(other, _MultiGeometry)
        return len(self.parts) == len(other.parts) and all(
            a == b for a, b in zip(self.parts, other.parts)
        )


class MultiPoint(_MultiGeometry):
    """A set of points."""

    __slots__ = ()
    _part_type = Point

    @property
    def geometry_type(self) -> GeometryType:
        return GeometryType.MULTIPOINT

    @staticmethod
    def of(coords: Iterable[Sequence[float]]) -> "MultiPoint":
        """Build from raw ``(x, y)`` pairs."""
        return MultiPoint(Point(x, y) for x, y in coords)


class MultiLineString(_MultiGeometry):
    """A set of polylines."""

    __slots__ = ()
    _part_type = LineString

    @property
    def geometry_type(self) -> GeometryType:
        return GeometryType.MULTILINESTRING

    def length(self) -> float:
        """Total length over all parts."""
        return sum(part.length() for part in self.parts)


class MultiPolygon(_MultiGeometry):
    """A set of polygons (disjoint by Simple Features convention)."""

    __slots__ = ()
    _part_type = Polygon

    @property
    def geometry_type(self) -> GeometryType:
        return GeometryType.MULTIPOLYGON

    def area(self) -> float:
        """Total area over all parts."""
        return sum(part.area() for part in self.parts)


class GeometryCollection(_MultiGeometry):
    """A heterogeneous bag of geometries."""

    __slots__ = ()
    _part_type = Geometry

    @property
    def geometry_type(self) -> GeometryType:
        return GeometryType.GEOMETRYCOLLECTION
