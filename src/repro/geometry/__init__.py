"""Geometry substrate: types, WKT/WKB codecs, predicates, refinement engines.

This package replaces the JTS/GEOS/shapely dependency stack of the paper's
prototypes with a self-contained pure-Python (plus numpy) implementation.
"""

from repro.geometry.base import Geometry, GeometryType
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.geometry.linestring import LineString
from repro.geometry.polygon import LinearRing, Polygon
from repro.geometry.multi import (
    GeometryCollection,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
)
from repro.geometry.wkt import WKTReader, WKTWriter
from repro.geometry.wkt import loads as wkt_loads
from repro.geometry.wkt import dumps as wkt_dumps
from repro.geometry.wkb import loads as wkb_loads
from repro.geometry.wkb import dumps as wkb_dumps
from repro.geometry.prepared import (
    PreparedLineString,
    PreparedPolygon,
    clear_prepared_cache,
    prepare,
    prepare_cached,
)
from repro.geometry.engine import (
    EngineCounters,
    FastGeometryEngine,
    GeometryEngine,
    SlowGeometryEngine,
    create_engine,
)

__all__ = [
    "Geometry",
    "GeometryType",
    "Envelope",
    "Point",
    "LineString",
    "LinearRing",
    "Polygon",
    "MultiPoint",
    "MultiLineString",
    "MultiPolygon",
    "GeometryCollection",
    "WKTReader",
    "WKTWriter",
    "wkt_loads",
    "wkt_dumps",
    "wkb_loads",
    "wkb_dumps",
    "PreparedPolygon",
    "PreparedLineString",
    "prepare",
    "prepare_cached",
    "clear_prepared_cache",
    "EngineCounters",
    "GeometryEngine",
    "FastGeometryEngine",
    "SlowGeometryEngine",
    "create_engine",
]
