"""Well-Known Binary reader and writer.

Section III of the paper notes that SpatialSpark keeps geometry as WKT
strings "to provide a fair comparison with ISP-MC" and that a binary
in-memory / on-HDFS representation "is left for our future work".  This
module implements that future-work item; the ``a3`` ablation benchmark
compares WKT vs WKB scan-and-parse cost.

The encoding follows the OGC WKB spec (byte order flag, uint32 type tag,
float64 coordinates), 2-D geometries only.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import WKBParseError
from repro.geometry.base import Geometry, GeometryType
from repro.geometry.linestring import LineString
from repro.geometry.multi import (
    GeometryCollection,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
)
from repro.geometry.point import Point
from repro.geometry.polygon import LinearRing, Polygon

__all__ = ["loads", "dumps"]

_TYPE_CODES = {
    GeometryType.POINT: 1,
    GeometryType.LINESTRING: 2,
    GeometryType.POLYGON: 3,
    GeometryType.MULTIPOINT: 4,
    GeometryType.MULTILINESTRING: 5,
    GeometryType.MULTIPOLYGON: 6,
    GeometryType.GEOMETRYCOLLECTION: 7,
}
_CODE_TYPES = {code: tag for tag, code in _TYPE_CODES.items()}

_LITTLE = 1
_BIG = 0


class _Cursor:
    """Sequential reader over a bytes buffer with endianness tracking."""

    __slots__ = ("data", "pos", "prefix")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0
        self.prefix = "<"

    def read_byte_order(self) -> None:
        if self.pos >= len(self.data):
            raise WKBParseError("truncated WKB: missing byte-order flag")
        flag = self.data[self.pos]
        self.pos += 1
        if flag == _LITTLE:
            self.prefix = "<"
        elif flag == _BIG:
            self.prefix = ">"
        else:
            raise WKBParseError(f"invalid byte-order flag {flag}")

    def read(self, fmt: str):
        full = self.prefix + fmt
        size = struct.calcsize(full)
        if self.pos + size > len(self.data):
            raise WKBParseError(
                f"truncated WKB: need {size} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        values = struct.unpack_from(full, self.data, self.pos)
        self.pos += size
        return values

    def uint32(self) -> int:
        return self.read("I")[0]

    def coords(self, count: int) -> list[tuple[float, float]]:
        values = self.read(f"{2 * count}d")
        return [(values[i], values[i + 1]) for i in range(0, 2 * count, 2)]


def dumps(geometry: Geometry) -> bytes:
    """Serialise a geometry to little-endian WKB."""
    return b"".join(_encode(geometry))


def _encode(geometry: Geometry) -> Iterator[bytes]:
    tag = geometry.geometry_type
    yield struct.pack("<BI", _LITTLE, _TYPE_CODES[tag])
    if tag is GeometryType.POINT:
        if geometry.is_empty:
            # OGC convention: empty point encodes as NaN coordinates.
            yield struct.pack("<2d", float("nan"), float("nan"))
        else:
            yield struct.pack("<2d", geometry.x, geometry.y)
    elif tag is GeometryType.LINESTRING:
        yield struct.pack("<I", len(geometry.coords))
        yield geometry.coords.astype("<f8").tobytes()
    elif tag is GeometryType.POLYGON:
        rings = [ring for ring in geometry.rings if not ring.is_empty]
        yield struct.pack("<I", len(rings))
        for ring in rings:
            yield struct.pack("<I", len(ring.coords))
            yield ring.coords.astype("<f8").tobytes()
    elif tag in (
        GeometryType.MULTIPOINT,
        GeometryType.MULTILINESTRING,
        GeometryType.MULTIPOLYGON,
        GeometryType.GEOMETRYCOLLECTION,
    ):
        yield struct.pack("<I", len(geometry.parts))
        for part in geometry.parts:
            yield from _encode(part)
    else:  # pragma: no cover - the enum is closed
        raise WKBParseError(f"cannot serialise geometry type {tag}")


def loads(data: bytes) -> Geometry:
    """Parse one WKB geometry; raises :class:`WKBParseError` on bad input."""
    cursor = _Cursor(bytes(data))
    geometry = _decode(cursor)
    if cursor.pos != len(cursor.data):
        raise WKBParseError(
            f"trailing bytes after geometry (offset {cursor.pos} of {len(cursor.data)})"
        )
    return geometry


def _decode(cursor: _Cursor) -> Geometry:
    cursor.read_byte_order()
    code = cursor.uint32()
    tag = _CODE_TYPES.get(code)
    if tag is None:
        raise WKBParseError(f"unknown geometry type code {code}")
    if tag is GeometryType.POINT:
        (x, y) = cursor.coords(1)[0]
        if x != x and y != y:  # NaN, NaN encodes POINT EMPTY
            return Point.empty()
        return Point(x, y)
    if tag is GeometryType.LINESTRING:
        return LineString(cursor.coords(cursor.uint32()))
    if tag is GeometryType.POLYGON:
        num_rings = cursor.uint32()
        if num_rings == 0:
            return Polygon.empty()
        rings = [LinearRing(cursor.coords(cursor.uint32())) for _ in range(num_rings)]
        return Polygon(rings[0], rings[1:])
    count = cursor.uint32()
    parts = [_decode(cursor) for _ in range(count)]
    if tag is GeometryType.MULTIPOINT:
        return MultiPoint(parts)
    if tag is GeometryType.MULTILINESTRING:
        return MultiLineString(parts)
    if tag is GeometryType.MULTIPOLYGON:
        return MultiPolygon(parts)
    return GeometryCollection(parts)
