"""Geometry abstract base class and the geometry type enumeration.

The geometry model mirrors the subset of the Simple Features hierarchy that
the paper exercises: points (taxi pickups, GBIF occurrences), linestrings
(LION street polylines), polygons with holes (census blocks, WWF
ecoregions), and their Multi* containers.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.geometry.envelope import Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.geometry.point import Point

__all__ = ["Geometry", "GeometryType"]


class GeometryType(enum.Enum):
    """Simple Features geometry type tags (also used as WKT keywords)."""

    POINT = "POINT"
    LINESTRING = "LINESTRING"
    POLYGON = "POLYGON"
    MULTIPOINT = "MULTIPOINT"
    MULTILINESTRING = "MULTILINESTRING"
    MULTIPOLYGON = "MULTIPOLYGON"
    GEOMETRYCOLLECTION = "GEOMETRYCOLLECTION"


class Geometry(ABC):
    """Immutable planar geometry.

    Subclasses cache their envelope on first access; all coordinates are
    Cartesian (the paper treats lon/lat as planar coordinates too — its
    NearestD distances are expressed in feet on projected NYC data).
    """

    __slots__ = ("_envelope",)

    def __init__(self) -> None:
        self._envelope: Envelope | None = None

    @property
    @abstractmethod
    def geometry_type(self) -> GeometryType:
        """The Simple Features type tag of this geometry."""

    @abstractmethod
    def _compute_envelope(self) -> Envelope:
        """Compute the tight MBB (cached by :attr:`envelope`)."""

    @property
    @abstractmethod
    def is_empty(self) -> bool:
        """True when the geometry has no coordinates."""

    @property
    @abstractmethod
    def num_points(self) -> int:
        """Total number of vertices, counting every ring/part."""

    @property
    def envelope(self) -> Envelope:
        """The geometry's minimum bounding box (cached)."""
        if self._envelope is None:
            self._envelope = self._compute_envelope()
        return self._envelope

    # -- Spatial predicates & measures (dispatch to repro.geometry.algorithms).
    # These are convenience wrappers so user code can read like the JTS calls
    # in Fig 2 of the paper (``geom.within(geom_)``); engine code goes through
    # repro.geometry.engine for instrumented/prepared execution.

    def within(self, other: "Geometry") -> bool:
        """True when every point of ``self`` lies inside ``other``."""
        from repro.geometry.algorithms import predicates

        return predicates.within(self, other)

    def contains(self, other: "Geometry") -> bool:
        """True when every point of ``other`` lies inside ``self``."""
        from repro.geometry.algorithms import predicates

        return predicates.within(other, self)

    def intersects(self, other: "Geometry") -> bool:
        """True when the geometries share at least one point."""
        from repro.geometry.algorithms import predicates

        return predicates.intersects(self, other)

    def distance(self, other: "Geometry") -> float:
        """Minimum Euclidean distance between the geometries."""
        from repro.geometry.algorithms import distance as distance_mod

        return distance_mod.distance(self, other)

    def wkt(self) -> str:
        """Serialise to Well-Known Text."""
        from repro.geometry import wkt as wkt_mod

        return wkt_mod.dumps(self)

    def wkb(self) -> bytes:
        """Serialise to Well-Known Binary (little-endian)."""
        from repro.geometry import wkb as wkb_mod

        return wkb_mod.dumps(self)

    def centroid(self) -> "Point":
        """The geometry's centroid as a :class:`~repro.geometry.point.Point`."""
        from repro.geometry.algorithms import measures

        return measures.centroid(self)

    def __repr__(self) -> str:
        text = self.wkt()
        if len(text) > 72:
            text = text[:69] + "..."
        return f"<{type(self).__name__} {text}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Geometry):
            return NotImplemented
        if self.geometry_type is not other.geometry_type:
            return False
        return self._coordinates_equal(other)

    @abstractmethod
    def _coordinates_equal(self, other: "Geometry") -> bool:
        """Exact coordinate-wise equality against a same-type geometry."""

    def __hash__(self) -> int:  # geometries hash by WKT; cheap enough for tests
        return hash((self.geometry_type, self.wkt()))
