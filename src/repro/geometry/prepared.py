"""Prepared geometries: precomputed structures for repeated predicate tests.

JTS's speed advantage over GEOS in the paper's Section V.B comes from
avoiding per-call small-object churn.  The fast refinement engine goes one
step further and *prepares* each right-side geometry once (the right side
is broadcast and probed millions of times): polygons get a per-edge
interval table grouped into horizontal strips so each point-in-polygon
test touches only the edges whose y-interval contains the query point, and
polylines get a segment-envelope table for early distance pruning.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.errors import GeometryError
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import MultiLineString, MultiPolygon
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

__all__ = [
    "PreparedPolygon",
    "PreparedLineString",
    "prepare",
    "prepare_cached",
    "clear_prepared_cache",
]

_EPS = 1e-12

# Budget for one broadcasted (points x edges) kernel evaluation; batches are
# chunked so intermediate matrices stay cache- and memory-friendly.
_BATCH_CELL_BUDGET = 1 << 22


class PreparedPolygon:
    """A polygon preprocessed for fast repeated point-in-polygon tests.

    All ring edges (shell and holes together — crossing parity over the
    union of rings gives the even-odd interior, which for valid polygons
    with properly-oriented holes equals shell-minus-holes) are stored in
    flat numpy arrays sorted into ``num_strips`` horizontal strips.
    """

    __slots__ = (
        "polygon",
        "envelope",
        "_strip_edges",
        "_strip_edge_lists",
        "_batch_tables_cache",
        "_y_min",
        "_strip_height",
        "_num_strips",
        "edge_count",
        "mean_edges_per_strip",
    )

    # Below this edge count a scalar loop over precomputed tuples beats
    # numpy's per-call overhead (measured on CPython 3.11); both paths
    # compute the identical crossing-count answer.
    _SCALAR_THRESHOLD = 48

    def __init__(self, polygon: Polygon, num_strips: int | None = None):
        if polygon.is_empty:
            raise GeometryError("cannot prepare an empty polygon")
        self.polygon = polygon
        self.envelope = polygon.envelope
        edges = []
        for ring in polygon.rings:
            coords = ring.coords
            for i in range(len(coords) - 1):
                edges.append(
                    (coords[i, 0], coords[i, 1], coords[i + 1, 0], coords[i + 1, 1])
                )
        edge_array = np.asarray(edges, dtype=np.float64)
        self.edge_count = len(edge_array)
        if num_strips is None:
            num_strips = max(1, min(16, self.edge_count // 8))
        self._num_strips = num_strips
        self._y_min = self.envelope.min_y
        height = max(self.envelope.height, 1e-300)
        self._strip_height = height / num_strips
        # Assign each edge to every strip its y-interval overlaps.
        strip_edges: list[list[int]] = [[] for _ in range(num_strips)]
        y_lo = np.minimum(edge_array[:, 1], edge_array[:, 3])
        y_hi = np.maximum(edge_array[:, 1], edge_array[:, 3])
        lo_strip = np.clip(
            ((y_lo - self._y_min) / self._strip_height).astype(int), 0, num_strips - 1
        )
        hi_strip = np.clip(
            ((y_hi - self._y_min) / self._strip_height).astype(int), 0, num_strips - 1
        )
        for edge_idx in range(self.edge_count):
            for strip in range(lo_strip[edge_idx], hi_strip[edge_idx] + 1):
                strip_edges[strip].append(edge_idx)
        self._strip_edges = [
            edge_array[indices] if indices else np.empty((0, 4), dtype=np.float64)
            for indices in strip_edges
        ]
        self.mean_edges_per_strip = max(
            1, sum(len(s) for s in self._strip_edges) // num_strips
        )
        if self.edge_count <= self._SCALAR_THRESHOLD:
            # Plain-tuple edge lists for the scalar fast path.  Each tuple
            # carries the edge endpoints plus a precomputed bbox and the
            # scaled epsilon for its boundary test, so the per-probe loop
            # does only comparisons and one multiply in the common case.
            self._strip_edge_lists = [
                [self._edge_tuple(edge) for edge in strip]
                for strip in self._strip_edges
            ]
        else:
            self._strip_edge_lists = None
        self._batch_tables_cache = None

    @staticmethod
    def _edge_tuple(edge) -> tuple:
        x1, y1, x2, y2 = (float(v) for v in edge)
        eps = _EPS * max(abs(x2 - x1) + abs(y2 - y1), 1.0)
        return (
            x1,
            y1,
            x2,
            y2,
            min(x1, x2) - eps,
            min(y1, y2) - eps,
            max(x1, x2) + eps,
            max(y1, y2) + eps,
            eps,
        )

    def _strip_index(self, y: float) -> int:
        strip = int((y - self._y_min) / self._strip_height)
        if strip < 0:
            return 0
        if strip >= self._num_strips:
            return self._num_strips - 1
        return strip

    def _strip_for(self, y: float) -> np.ndarray:
        return self._strip_edges[self._strip_index(y)]

    def contains_point(self, x: float, y: float) -> bool:
        """Point-in-polygon via crossing count on one strip's edges.

        Boundary points count as contained (closed-region semantics,
        matching :func:`repro.geometry.algorithms.predicates.point_in_polygon`).
        Small polygons take a scalar loop over prepared tuples; large ones
        a vectorised numpy pass — same answer, different constant factors.
        """
        if not self.envelope.contains_point(x, y):
            return False
        if self._strip_edge_lists is not None:
            return self._contains_point_scalar(x, y)
        edges = self._strip_for(y)
        if len(edges) == 0:
            return False
        x1 = edges[:, 0]
        y1 = edges[:, 1]
        x2 = edges[:, 2]
        y2 = edges[:, 3]
        # Boundary test: |cross| small and point within the segment box.
        cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
        scale = np.maximum(np.abs(x2 - x1) + np.abs(y2 - y1), 1.0)
        on_edge = (
            (np.abs(cross) <= _EPS * scale)
            & (np.minimum(x1, x2) - _EPS <= x)
            & (x <= np.maximum(x1, x2) + _EPS)
            & (np.minimum(y1, y2) - _EPS <= y)
            & (y <= np.maximum(y1, y2) + _EPS)
        )
        if bool(on_edge.any()):
            return True
        straddles = (y1 > y) != (y2 > y)
        if not bool(straddles.any()):
            return False
        sx1 = x1[straddles]
        sy1 = y1[straddles]
        sx2 = x2[straddles]
        sy2 = y2[straddles]
        x_cross = sx1 + (y - sy1) * (sx2 - sx1) / (sy2 - sy1)
        return bool(np.count_nonzero(x < x_cross) % 2 == 1)

    def _contains_point_scalar(self, x: float, y: float) -> bool:
        inside = False
        for x1, y1, x2, y2, bx0, by0, bx1, by1, eps in self._strip_edge_lists[
            self._strip_index(y)
        ]:
            if by0 <= y <= by1 and bx0 <= x <= bx1:
                cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
                if -eps <= cross <= eps:
                    return True
            if (y1 > y) != (y2 > y):
                if x < x1 + (y - y1) * (x2 - x1) / (y2 - y1):
                    inside = not inside
        return inside

    def count_edges_tested(self, y: float) -> int:
        """Number of edges a query at ``y`` inspects (for cost accounting)."""
        return len(self._strip_for(y))

    def _batch_tables(self) -> list[np.ndarray]:
        """Per-strip edge tables for the batch kernel, built lazily.

        Each table row is ``(x1, y1, x2, y2, bx0, by0, bx1, by1, ceps)``;
        the boundary test is ``in-bbox AND |cross| <= ceps`` for both of
        the scalar code paths, they only bake different epsilons into the
        bbox — so the tables reuse the exact per-path constants and the
        batch kernel reproduces either path bit-for-bit.
        """
        tables = self._batch_tables_cache
        if tables is None:
            if self._strip_edge_lists is not None:
                tables = [
                    np.asarray(strip, dtype=np.float64).reshape(-1, 9)
                    for strip in self._strip_edge_lists
                ]
            else:
                tables = [
                    self._numpy_strip_table(edges) for edges in self._strip_edges
                ]
            self._batch_tables_cache = tables
        return tables

    @staticmethod
    def _numpy_strip_table(edges: np.ndarray) -> np.ndarray:
        x1, y1, x2, y2 = edges[:, 0], edges[:, 1], edges[:, 2], edges[:, 3]
        scale = np.maximum(np.abs(x2 - x1) + np.abs(y2 - y1), 1.0)
        return np.column_stack(
            [
                x1,
                y1,
                x2,
                y2,
                np.minimum(x1, x2) - _EPS,
                np.minimum(y1, y2) - _EPS,
                np.maximum(x1, x2) + _EPS,
                np.maximum(y1, y2) + _EPS,
                _EPS * scale,
            ]
        )

    def contains_batch(self, xs, ys) -> np.ndarray:
        """Vectorised :meth:`contains_point` over coordinate arrays.

        Answers are bit-identical to N scalar calls: the kernel evaluates
        the same boundary and crossing-parity expressions in the same IEEE
        double order, just for a whole strip's worth of points per numpy
        dispatch instead of one.
        """
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        result = np.zeros(len(xs), dtype=bool)
        if len(xs) == 0:
            return result
        env = self.envelope
        in_env = (
            (env.min_x <= xs)
            & (xs <= env.max_x)
            & (env.min_y <= ys)
            & (ys <= env.max_y)
        )
        if not bool(in_env.any()):
            return result
        idx = np.flatnonzero(in_env)
        sx = xs[idx]
        sy = ys[idx]
        # int() truncation equals floor here: the envelope check guarantees
        # sy >= y_min, so the quotient is never negative.
        strips = np.clip(
            ((sy - self._y_min) / self._strip_height).astype(np.int64),
            0,
            self._num_strips - 1,
        )
        tables = self._batch_tables()
        for strip in np.unique(strips):
            table = tables[strip]
            if table.shape[0] == 0:
                continue
            sel = strips == strip
            result[idx[sel]] = _edges_contain_batch(table, sx[sel], sy[sel])
        return result


def _edges_contain_batch(table: np.ndarray, px: np.ndarray, py: np.ndarray) -> np.ndarray:
    """Crossing-count containment of many points against one edge table."""
    x1, y1, x2, y2 = table[:, 0], table[:, 1], table[:, 2], table[:, 3]
    bx0, by0, bx1, by1 = table[:, 4], table[:, 5], table[:, 6], table[:, 7]
    ceps = table[:, 8]
    n = len(px)
    out = np.empty(n, dtype=bool)
    chunk = max(1, _BATCH_CELL_BUDGET // max(table.shape[0], 1))
    for lo in range(0, n, chunk):
        X = px[lo : lo + chunk, None]
        Y = py[lo : lo + chunk, None]
        cross = (x2 - x1) * (Y - y1) - (y2 - y1) * (X - x1)
        on_edge = (
            (by0 <= Y)
            & (Y <= by1)
            & (bx0 <= X)
            & (X <= bx1)
            & (-ceps <= cross)
            & (cross <= ceps)
        )
        straddles = (y1 > Y) != (y2 > Y)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = x1 + (Y - y1) * (x2 - x1) / (y2 - y1)
        crossings = straddles & (X < x_cross)
        out[lo : lo + chunk] = on_edge.any(axis=1) | (
            crossings.sum(axis=1) % 2 == 1
        )
    return out


class PreparedLineString:
    """A polyline preprocessed for fast repeated distance queries."""

    __slots__ = (
        "line",
        "envelope",
        "_starts",
        "_deltas",
        "_seg_len_sq",
        "_seg_boxes",
        "_segment_tuples",
    )

    _SCALAR_THRESHOLD = 24

    def __init__(self, line: LineString):
        if line.is_empty:
            raise GeometryError("cannot prepare an empty linestring")
        self.line = line
        self.envelope = line.envelope
        coords = line.coords
        if len(coords) == 1:
            self._starts = coords
            self._deltas = np.zeros_like(coords)
        else:
            self._starts = coords[:-1]
            self._deltas = coords[1:] - coords[:-1]
        self._seg_len_sq = np.einsum("ij,ij->i", self._deltas, self._deltas)
        ends = self._starts + self._deltas
        self._seg_boxes = np.column_stack(
            [
                np.minimum(self._starts[:, 0], ends[:, 0]),
                np.minimum(self._starts[:, 1], ends[:, 1]),
                np.maximum(self._starts[:, 0], ends[:, 0]),
                np.maximum(self._starts[:, 1], ends[:, 1]),
            ]
        )
        if len(self._starts) <= self._SCALAR_THRESHOLD:
            self._segment_tuples = [
                (
                    float(self._starts[i, 0]),
                    float(self._starts[i, 1]),
                    float(self._deltas[i, 0]),
                    float(self._deltas[i, 1]),
                    float(self._seg_len_sq[i]),
                )
                for i in range(len(self._starts))
            ]
        else:
            self._segment_tuples = None

    def distance_to_point(self, x: float, y: float) -> float:
        """Minimum distance from a point to the polyline.

        Small polylines use a scalar loop over prepared segment tuples;
        large ones a vectorised numpy pass.
        """
        if self._segment_tuples is not None:
            return self._distance_to_point_scalar(x, y)
        return self._distance_to_point_vectorized(x, y)

    def _distance_to_point_scalar(self, x: float, y: float) -> float:
        best_sq = math.inf
        for x1, y1, dx, dy, seg_len_sq in self._segment_tuples:
            rel_x = x - x1
            rel_y = y - y1
            if seg_len_sq > 0.0:
                t = (rel_x * dx + rel_y * dy) / seg_len_sq
                if t < 0.0:
                    t = 0.0
                elif t > 1.0:
                    t = 1.0
                rel_x -= t * dx
                rel_y -= t * dy
            d_sq = rel_x * rel_x + rel_y * rel_y
            if d_sq < best_sq:
                best_sq = d_sq
        return math.sqrt(best_sq)

    def _distance_to_point_vectorized(self, x: float, y: float) -> float:
        """Minimum distance from a point to the polyline (vectorised)."""
        rel_x = x - self._starts[:, 0]
        rel_y = y - self._starts[:, 1]
        dot = rel_x * self._deltas[:, 0] + rel_y * self._deltas[:, 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(self._seg_len_sq > 0.0, dot / self._seg_len_sq, 0.0)
        t = np.clip(t, 0.0, 1.0)
        dx = rel_x - t * self._deltas[:, 0]
        dy = rel_y - t * self._deltas[:, 1]
        return float(np.sqrt((dx * dx + dy * dy).min()))

    def within_distance(self, x: float, y: float, d: float) -> bool:
        """True when the point lies within distance ``d`` of the polyline.

        Applies an envelope lower bound before the exact kernel — the
        standard refine-with-early-exit used by NearestD joins.
        """
        return self.within_distance_counted(x, y, d)[0]

    def within_distance_counted(self, x: float, y: float, d: float) -> tuple[bool, int]:
        """Threshold test plus the number of segments actually examined.

        JTS's ``isWithinDistance`` stops at the first segment within the
        threshold; the count lets the cost model charge only the work a
        JTS-style engine performs (a GEOS-style engine computes the full
        minimum distance before comparing — see the slow engine).
        """
        if self.envelope.distance_to_point(x, y) > d:
            return (False, 1)
        d_sq = d * d
        if self._segment_tuples is not None:
            examined = 0
            for x1, y1, dx, dy, seg_len_sq in self._segment_tuples:
                examined += 1
                rel_x = x - x1
                rel_y = y - y1
                if seg_len_sq > 0.0:
                    t = (rel_x * dx + rel_y * dy) / seg_len_sq
                    if t < 0.0:
                        t = 0.0
                    elif t > 1.0:
                        t = 1.0
                    rel_x -= t * dx
                    rel_y -= t * dy
                if rel_x * rel_x + rel_y * rel_y <= d_sq:
                    return (True, examined)
            return (False, examined)
        distances_sq = self._segment_distances_sq(x, y)
        within = distances_sq <= d_sq
        if bool(within.any()):
            return (True, int(np.argmax(within)) + 1)
        return (False, len(distances_sq))

    def _segment_distances_sq(self, x: float, y: float) -> np.ndarray:
        rel_x = x - self._starts[:, 0]
        rel_y = y - self._starts[:, 1]
        dot = rel_x * self._deltas[:, 0] + rel_y * self._deltas[:, 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(self._seg_len_sq > 0.0, dot / self._seg_len_sq, 0.0)
        t = np.clip(t, 0.0, 1.0)
        dx = rel_x - t * self._deltas[:, 0]
        dy = rel_y - t * self._deltas[:, 1]
        return dx * dx + dy * dy

    def _segment_distances_sq_batch(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Squared point-to-segment distances for a (points, 1) column pair.

        Broadcasts the exact per-element operation sequence of
        :meth:`_segment_distances_sq`, so every cell equals the scalar
        value bit-for-bit.
        """
        rel_x = X - self._starts[:, 0]
        rel_y = Y - self._starts[:, 1]
        dot = rel_x * self._deltas[:, 0] + rel_y * self._deltas[:, 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(self._seg_len_sq > 0.0, dot / self._seg_len_sq, 0.0)
        t = np.clip(t, 0.0, 1.0)
        dx = rel_x - t * self._deltas[:, 0]
        dy = rel_y - t * self._deltas[:, 1]
        return dx * dx + dy * dy

    def distance_batch(self, xs, ys) -> np.ndarray:
        """Vectorised :meth:`distance_to_point` over coordinate arrays."""
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        n = len(xs)
        out = np.empty(n, dtype=np.float64)
        nsegs = len(self._starts)
        chunk = max(1, _BATCH_CELL_BUDGET // max(nsegs, 1))
        for lo in range(0, n, chunk):
            d_sq = self._segment_distances_sq_batch(
                xs[lo : lo + chunk, None], ys[lo : lo + chunk, None]
            )
            out[lo : lo + chunk] = np.sqrt(d_sq.min(axis=1))
        return out

    def within_distance_batch_counted(
        self, xs, ys, d: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`within_distance_counted` over coordinate arrays.

        Returns (within, segments_examined) arrays with the exact values N
        scalar calls would produce: the envelope prune reports one examined
        segment, an in-threshold point reports the 1-based index of its
        first matching segment, a miss reports the full segment count.
        """
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        n = len(xs)
        within = np.zeros(n, dtype=bool)
        examined = np.ones(n, dtype=np.int64)
        if n == 0:
            return within, examined
        env = self.envelope
        dxe = np.maximum(np.maximum(env.min_x - xs, xs - env.max_x), 0.0)
        dye = np.maximum(np.maximum(env.min_y - ys, ys - env.max_y), 0.0)
        env_d = np.hypot(dxe, dye)
        live = env_d <= d
        # np.hypot and math.hypot may round differently in the last ulp;
        # re-decide borderline prunes with math.hypot, which is what the
        # scalar path uses, so the examined counts agree exactly.
        borderline = np.flatnonzero(
            np.abs(env_d - d) <= 1e-9 * max(abs(d), 1.0)
        )
        for i in borderline:
            live[i] = math.hypot(float(dxe[i]), float(dye[i])) <= d
        idx = np.flatnonzero(live)
        if len(idx) == 0:
            return within, examined
        d_sq = d * d
        nsegs = len(self._starts)
        chunk = max(1, _BATCH_CELL_BUDGET // max(nsegs, 1))
        for lo in range(0, len(idx), chunk):
            sub = idx[lo : lo + chunk]
            dist_sq = self._segment_distances_sq_batch(
                xs[sub, None], ys[sub, None]
            )
            hit = dist_sq <= d_sq
            any_hit = hit.any(axis=1)
            within[sub] = any_hit
            examined[sub] = np.where(any_hit, np.argmax(hit, axis=1) + 1, nsegs)
        return within, examined


def prepare(geometry: Geometry):
    """Prepare a geometry for repeated probing.

    Returns a :class:`PreparedPolygon`, :class:`PreparedLineString`, a list
    of prepared parts for Multi* inputs, or the geometry itself for points
    (which need no preparation).
    """
    if isinstance(geometry, Polygon):
        return PreparedPolygon(geometry)
    if isinstance(geometry, LineString):
        return PreparedLineString(geometry)
    if isinstance(geometry, MultiPolygon):
        return [PreparedPolygon(part) for part in geometry.parts if not part.is_empty]
    if isinstance(geometry, MultiLineString):
        return [PreparedLineString(part) for part in geometry.parts if not part.is_empty]
    if isinstance(geometry, Point):
        return geometry
    raise GeometryError(f"cannot prepare geometry type {geometry.geometry_type}")


# Prepared handles keyed by *content* fingerprint (repro.cache).  Broadcast/
# partitioned joins repeatedly prepare the same right-side geometry (every
# tile that a polygon's envelope overlaps builds its own index over it), and
# repeated queries over the same polygon table re-load equal geometries as
# fresh objects — a content key lets both cases share one strip index, where
# the old id()-keyed memo only helped within a single load.  The fingerprint
# is recomputed from coordinate bytes on every lookup, so a geometry mutated
# in place simply hashes to a new key and can never see a stale handle.
_PREPARED_CACHE_CAPACITY = 4096
_prepared_cache: OrderedDict[bytes, object] = OrderedDict()


def prepare_cached(geometry: Geometry):
    """Like :func:`prepare` but memoised by content fingerprint (LRU)."""
    if isinstance(geometry, Point):
        # Points prepare to themselves; caching them would only add churn.
        return geometry
    from repro.cache.fingerprint import fingerprint_geometry

    key = fingerprint_geometry(geometry)
    handle = _prepared_cache.get(key)
    if handle is not None:
        _prepared_cache.move_to_end(key)
        return handle
    handle = prepare(geometry)
    _prepared_cache[key] = handle
    while len(_prepared_cache) > _PREPARED_CACHE_CAPACITY:
        _prepared_cache.popitem(last=False)
    return handle


def clear_prepared_cache() -> None:
    """Drop every cached prepared geometry (tests, memory pressure)."""
    _prepared_cache.clear()
