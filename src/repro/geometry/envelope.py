"""Axis-aligned envelopes (Minimum Bounding Boxes).

The envelope is the workhorse of the *spatial filtering* phase described in
Section II of the paper: candidate pairs are produced by intersecting MBBs
(with or without an index) before the expensive *spatial refinement* phase
evaluates exact predicates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError

__all__ = ["Envelope"]


@dataclass(frozen=True, slots=True)
class Envelope:
    """An immutable axis-aligned bounding box ``[min_x, max_x] x [min_y, max_y]``.

    An envelope may be *empty* (contains no points); the canonical empty
    envelope is obtained from :meth:`Envelope.empty`.  All predicate methods
    treat an empty envelope as intersecting/containing nothing.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        coords = (self.min_x, self.min_y, self.max_x, self.max_y)
        if any(math.isnan(value) for value in coords):
            raise GeometryError(f"envelope coordinates may not be NaN: {coords}")

    @staticmethod
    def empty() -> "Envelope":
        """Return the canonical empty envelope (min > max in both axes)."""
        return Envelope(math.inf, math.inf, -math.inf, -math.inf)

    @staticmethod
    def of_point(x: float, y: float) -> "Envelope":
        """Return the degenerate envelope covering a single point."""
        return Envelope(x, y, x, y)

    @staticmethod
    def of_points(xs, ys) -> "Envelope":
        """Return the tight envelope of parallel coordinate sequences.

        ``xs``/``ys`` may be any non-empty sequences (lists, numpy arrays).
        """
        if len(xs) == 0:
            return Envelope.empty()
        return Envelope(min(xs), min(ys), max(xs), max(ys))

    @property
    def is_empty(self) -> bool:
        """True when the envelope contains no points."""
        return self.min_x > self.max_x or self.min_y > self.max_y

    @property
    def width(self) -> float:
        """Extent along the x axis (0.0 for an empty envelope)."""
        return 0.0 if self.is_empty else self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis (0.0 for an empty envelope)."""
        return 0.0 if self.is_empty else self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the envelope (0.0 for empty or degenerate envelopes)."""
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        """Perimeter (the R*-tree "margin" criterion); 0.0 when empty."""
        return 0.0 if self.is_empty else 2.0 * (self.width + self.height)

    @property
    def center(self) -> tuple[float, float]:
        """Midpoint of the envelope; raises on an empty envelope."""
        if self.is_empty:
            raise GeometryError("empty envelope has no center")
        return (self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0

    def intersects(self, other: "Envelope") -> bool:
        """True when the two envelopes share at least one point.

        Boundary contact counts as intersection, matching the JTS/GEOS
        convention used by the paper's filtering phase (a false negative
        here would lose join results; a false positive only costs a
        refinement test).
        """
        if self.is_empty or other.is_empty:
            return False
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def contains(self, other: "Envelope") -> bool:
        """True when ``other`` lies entirely inside this envelope."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.min_x <= other.min_x
            and other.max_x <= self.max_x
            and self.min_y <= other.min_y
            and other.max_y <= self.max_y
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True when the point lies inside or on the envelope boundary."""
        if self.is_empty:
            return False
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def expand_by(self, distance: float) -> "Envelope":
        """Return a copy grown by ``distance`` on every side.

        This mirrors ``Envelope.expandBy`` in Fig 2 of the paper, which is
        how the NearestD predicate is pushed into the R-tree filter: the
        right-side polyline MBBs are inflated by the search radius so the
        index query returns every polyline possibly within distance D.
        A negative distance shrinks the envelope and may make it empty.
        """
        if self.is_empty:
            return self
        result = Envelope(
            self.min_x - distance,
            self.min_y - distance,
            self.max_x + distance,
            self.max_y + distance,
        )
        return result if not result.is_empty else Envelope.empty()

    def union(self, other: "Envelope") -> "Envelope":
        """Return the smallest envelope covering both operands."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Envelope(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "Envelope") -> "Envelope":
        """Return the overlapping region, or the empty envelope."""
        if not self.intersects(other):
            return Envelope.empty()
        return Envelope(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def distance(self, other: "Envelope") -> float:
        """Minimum Euclidean distance between the two envelopes.

        Zero when they intersect; infinity when either is empty.  Used as a
        cheap lower bound that lets NearestD refinement skip exact
        point-to-polyline computations.
        """
        if self.is_empty or other.is_empty:
            return math.inf
        if self.intersects(other):
            return 0.0
        dx = max(other.min_x - self.max_x, self.min_x - other.max_x, 0.0)
        dy = max(other.min_y - self.max_y, self.min_y - other.max_y, 0.0)
        return math.hypot(dx, dy)

    def distance_to_point(self, x: float, y: float) -> float:
        """Minimum Euclidean distance from the envelope to a point."""
        if self.is_empty:
            return math.inf
        dx = max(self.min_x - x, x - self.max_x, 0.0)
        dy = max(self.min_y - y, y - self.max_y, 0.0)
        return math.hypot(dx, dy)
