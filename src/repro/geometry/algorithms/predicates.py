"""Spatial refinement predicates: point-in-polygon, within, intersects.

Section II of the paper defines a spatial join by a predicate theta over
object pairs; its two evaluated predicates are ``Within`` (point in
polygon) and ``NearestD`` (point within distance D of a polyline, in
:mod:`repro.geometry.algorithms.distance`).  This module also provides the
general intersects/contains predicates the ISP-MC UDF wrappers expose
(`ST_INTERSECTS`, `ST_CONTAINS`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.base import Geometry, GeometryType
from repro.geometry.linestring import LineString
from repro.geometry.multi import MultiLineString, MultiPoint, MultiPolygon
from repro.geometry.point import Point
from repro.geometry.polygon import LinearRing, Polygon

from repro.geometry.algorithms.segments import segments_intersect

__all__ = [
    "point_in_ring",
    "point_in_polygon",
    "point_on_linestring",
    "within",
    "intersects",
]

_EPS = 1e-12

# Ray-crossing location codes for point_in_ring.
_OUTSIDE = 0
_INSIDE = 1
_BOUNDARY = 2


def point_in_ring(x: float, y: float, coords: np.ndarray) -> int:
    """Classify a point against a closed ring by ray crossing.

    Returns ``0`` outside, ``1`` inside, ``2`` on the boundary.  ``coords``
    is the ring's ``(n, 2)`` closed coordinate array (first == last).  This
    is the classic crossing-number algorithm referenced in footnote 5 of
    the paper, with explicit boundary detection so ``Within`` can treat
    boundary points consistently (a boundary point *is* within, matching
    JTS ``within`` semantics for point/polygon where the point must be in
    the interior — see :func:`point_in_polygon` for the exact rule).
    """
    inside = False
    n = len(coords)
    for i in range(n - 1):
        x1, y1 = coords[i]
        x2, y2 = coords[i + 1]
        # Boundary check: point on the closed segment (x1,y1)-(x2,y2)?
        cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
        if abs(cross) <= _EPS * max(abs(x2 - x1) + abs(y2 - y1), 1.0):
            if min(x1, x2) - _EPS <= x <= max(x1, x2) + _EPS and (
                min(y1, y2) - _EPS <= y <= max(y1, y2) + _EPS
            ):
                return _BOUNDARY
        if (y1 > y) != (y2 > y):
            x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
            if x < x_cross:
                inside = not inside
    return _INSIDE if inside else _OUTSIDE


def point_in_polygon(x: float, y: float, polygon: Polygon, boundary_counts: bool = True) -> bool:
    """True when the point lies in the polygon (shell minus holes).

    ``boundary_counts`` selects whether boundary points match; the default
    True mirrors the closed-region semantics of ``ST_WITHIN`` over point/
    polygon pairs as used by the paper's census-block aggregation (a taxi
    pickup exactly on a block edge should land in some block, not vanish).
    Points on a *hole* boundary are treated like shell boundary points.
    """
    if polygon.is_empty:
        return False
    if not polygon.envelope.contains_point(x, y):
        return False
    shell_loc = point_in_ring(x, y, polygon.shell.coords)
    if shell_loc == _OUTSIDE:
        return False
    if shell_loc == _BOUNDARY:
        return boundary_counts
    for hole in polygon.holes:
        hole_loc = point_in_ring(x, y, hole.coords)
        if hole_loc == _INSIDE:
            return False
        if hole_loc == _BOUNDARY:
            return boundary_counts
    return True


def point_on_linestring(x: float, y: float, line: LineString) -> bool:
    """True when the point lies on (any segment of) the polyline."""
    coords = line.coords
    for i in range(len(coords) - 1):
        x1, y1 = coords[i]
        x2, y2 = coords[i + 1]
        cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
        if abs(cross) <= _EPS * max(abs(x2 - x1) + abs(y2 - y1), 1.0):
            if min(x1, x2) - _EPS <= x <= max(x1, x2) + _EPS and (
                min(y1, y2) - _EPS <= y <= max(y1, y2) + _EPS
            ):
                return True
    return False


def _ring_intersects_ring(a: LinearRing, b: LinearRing) -> bool:
    for i in range(len(a.coords) - 1):
        ax1, ay1 = a.coords[i]
        ax2, ay2 = a.coords[i + 1]
        for j in range(len(b.coords) - 1):
            bx1, by1 = b.coords[j]
            bx2, by2 = b.coords[j + 1]
            if segments_intersect(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2):
                return True
    return False


def _linestring_crosses_ring(line: LineString, ring: LinearRing) -> bool:
    for i in range(len(line.coords) - 1):
        x1, y1 = line.coords[i]
        x2, y2 = line.coords[i + 1]
        for j in range(len(ring.coords) - 1):
            rx1, ry1 = ring.coords[j]
            rx2, ry2 = ring.coords[j + 1]
            if segments_intersect(x1, y1, x2, y2, rx1, ry1, rx2, ry2):
                return True
    return False


def _linestrings_intersect(a: LineString, b: LineString) -> bool:
    for i in range(len(a.coords) - 1):
        x1, y1 = a.coords[i]
        x2, y2 = a.coords[i + 1]
        for j in range(len(b.coords) - 1):
            u1, v1 = b.coords[j]
            u2, v2 = b.coords[j + 1]
            if segments_intersect(x1, y1, x2, y2, u1, v1, u2, v2):
                return True
    return False


def _linestring_in_polygon(line: LineString, polygon: Polygon) -> bool:
    """True when the polyline lies entirely inside the closed polygon.

    Containment is decided by sampling: every vertex and every segment
    midpoint must lie inside the closed region.  This matches the exact
    answer whenever consecutive boundary crossings are farther apart than
    half a segment — true for the street/zone data shapes this library
    generates — and errs toward False only through the midpoint test.
    """
    if line.is_empty or polygon.is_empty:
        return False
    coords = line.coords
    for x, y in coords:
        if not point_in_polygon(float(x), float(y), polygon):
            return False
    for i in range(len(coords) - 1):
        mx = (coords[i, 0] + coords[i + 1, 0]) / 2.0
        my = (coords[i, 1] + coords[i + 1, 1]) / 2.0
        if not point_in_polygon(float(mx), float(my), polygon):
            return False
    return True


def _polygon_in_polygon(inner: Polygon, outer: Polygon) -> bool:
    """True when ``inner`` (shell and holes) lies inside ``outer``."""
    if inner.is_empty or outer.is_empty:
        return False
    if not outer.envelope.contains(inner.envelope):
        return False
    for x, y in inner.shell.coords:
        if not point_in_polygon(float(x), float(y), outer):
            return False
    # Touching boundaries are allowed for closed-region containment, so a
    # segment-crossing test alone cannot distinguish touch from cross; we
    # additionally require every inner-edge midpoint to stay inside.
    for i in range(len(inner.shell.coords) - 1):
        mx = (inner.shell.coords[i, 0] + inner.shell.coords[i + 1, 0]) / 2.0
        my = (inner.shell.coords[i, 1] + inner.shell.coords[i + 1, 1]) / 2.0
        if not point_in_polygon(float(mx), float(my), outer):
            return False
    for hole in outer.holes:
        for x, y in hole.coords[:-1]:
            if point_in_polygon(float(x), float(y), inner):
                return False
    return True


def within(a: Geometry, b: Geometry) -> bool:
    """True when geometry ``a`` lies within geometry ``b``.

    Supports the combinations the paper's joins and UDFs need: any part
    of a Multi* left side distributes with *all* semantics (every part
    within), and Multi* right sides distribute with *any* semantics for
    points (a point is within a multipolygon when it is within some part).
    """
    if a.is_empty or b.is_empty:
        return False
    if isinstance(a, (MultiPoint, MultiLineString, MultiPolygon)):
        return all(within(part, b) for part in a.parts if not part.is_empty)
    if isinstance(b, MultiPolygon):
        return any(within(a, part) for part in b.parts)
    if isinstance(a, Point):
        if isinstance(b, Polygon):
            return point_in_polygon(a.x, a.y, b)
        if isinstance(b, LineString):
            return point_on_linestring(a.x, a.y, b)
        if isinstance(b, MultiLineString):
            return any(point_on_linestring(a.x, a.y, part) for part in b.parts)
        if isinstance(b, Point):
            return a.x == b.x and a.y == b.y
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _linestring_in_polygon(a, b)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return _polygon_in_polygon(a, b)
    # A higher-dimensional geometry can never lie within a lower-dimensional
    # one (a polygon has interior area; points and lines have none).
    rank = {GeometryType.POINT: 0, GeometryType.LINESTRING: 1, GeometryType.POLYGON: 2}
    rank_a = rank.get(a.geometry_type)
    rank_b = rank.get(b.geometry_type)
    if rank_a is not None and rank_b is not None and rank_a > rank_b:
        return False
    raise GeometryError(
        f"within({a.geometry_type.value}, {b.geometry_type.value}) is not supported"
    )


def intersects(a: Geometry, b: Geometry) -> bool:
    """True when the geometries share at least one point."""
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.intersects(b.envelope):
        return False
    if isinstance(a, (MultiPoint, MultiLineString, MultiPolygon)):
        return any(intersects(part, b) for part in a.parts)
    if isinstance(b, (MultiPoint, MultiLineString, MultiPolygon)):
        return any(intersects(a, part) for part in b.parts)
    # Normalise ordering: Point < LineString < Polygon.
    rank = {GeometryType.POINT: 0, GeometryType.LINESTRING: 1, GeometryType.POLYGON: 2}
    if rank[a.geometry_type] > rank[b.geometry_type]:
        a, b = b, a
    if isinstance(a, Point):
        if isinstance(b, Point):
            return a.x == b.x and a.y == b.y
        if isinstance(b, LineString):
            return point_on_linestring(a.x, a.y, b)
        return point_in_polygon(a.x, a.y, b)
    if isinstance(a, LineString):
        if isinstance(b, LineString):
            return _linestrings_intersect(a, b)
        # line vs polygon: any vertex inside, or any segment crossing a ring
        if any(point_in_polygon(float(x), float(y), b) for x, y in a.coords):
            return True
        return any(_linestring_crosses_ring(a, ring) for ring in b.rings)
    # polygon vs polygon: ring crossing, or one fully containing the other
    assert isinstance(a, Polygon) and isinstance(b, Polygon)
    for ring_a in a.rings:
        for ring_b in b.rings:
            if _ring_intersects_ring(ring_a, ring_b):
                return True
    ax, ay = a.shell.coords[0]
    bx, by = b.shell.coords[0]
    return point_in_polygon(float(ax), float(ay), b) or point_in_polygon(
        float(bx), float(by), a
    )
