"""Geometric measures: area, length, centroid."""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import MultiLineString, MultiPoint, MultiPolygon
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

__all__ = ["area", "length", "centroid"]


def area(geometry: Geometry) -> float:
    """Planar area (0.0 for points and lines)."""
    if isinstance(geometry, Polygon):
        return geometry.area()
    if isinstance(geometry, MultiPolygon):
        return geometry.area()
    return 0.0


def length(geometry: Geometry) -> float:
    """Total polyline length, or ring perimeter for polygons."""
    if isinstance(geometry, LineString):
        return geometry.length()
    if isinstance(geometry, MultiLineString):
        return geometry.length()
    if isinstance(geometry, Polygon):
        return sum(
            LineString(ring.coords).length()
            for ring in geometry.rings
            if not ring.is_empty
        )
    if isinstance(geometry, MultiPolygon):
        return sum(length(part) for part in geometry.parts)
    return 0.0


def _polygon_centroid(polygon: Polygon) -> tuple[float, float, float]:
    """Return (cx*A, cy*A, A) accumulators for a polygon with holes."""
    cx_total = cy_total = area_total = 0.0
    for ring, sign in [(polygon.shell, 1.0)] + [(h, -1.0) for h in polygon.holes]:
        coords = ring.coords
        x = coords[:-1, 0]
        y = coords[:-1, 1]
        x_next = coords[1:, 0]
        y_next = coords[1:, 1]
        cross = x * y_next - x_next * y
        ring_area = float(np.sum(cross) / 2.0)
        if ring_area == 0.0:
            continue
        cx = float(np.sum((x + x_next) * cross) / (6.0 * ring_area))
        cy = float(np.sum((y + y_next) * cross) / (6.0 * ring_area))
        weight = sign * abs(ring_area)
        cx_total += cx * weight
        cy_total += cy * weight
        area_total += weight
    return cx_total, cy_total, area_total


def centroid(geometry: Geometry) -> Point:
    """Centroid of a geometry.

    Polygons use the exact area-weighted formula; linestrings use
    length-weighted segment midpoints; point sets use the mean.
    """
    if geometry.is_empty:
        return Point.empty()
    if isinstance(geometry, Point):
        return Point(geometry.x, geometry.y)
    if isinstance(geometry, MultiPoint):
        xs = [p.x for p in geometry.parts if not p.is_empty]
        ys = [p.y for p in geometry.parts if not p.is_empty]
        return Point(sum(xs) / len(xs), sum(ys) / len(ys))
    if isinstance(geometry, LineString):
        coords = geometry.coords
        if len(coords) == 1:
            return Point(float(coords[0, 0]), float(coords[0, 1]))
        deltas = np.diff(coords, axis=0)
        seg_lengths = np.hypot(deltas[:, 0], deltas[:, 1])
        total = float(seg_lengths.sum())
        if total == 0.0:
            return Point(float(coords[0, 0]), float(coords[0, 1]))
        mids = (coords[:-1] + coords[1:]) / 2.0
        cx = float((mids[:, 0] * seg_lengths).sum() / total)
        cy = float((mids[:, 1] * seg_lengths).sum() / total)
        return Point(cx, cy)
    if isinstance(geometry, MultiLineString):
        cx_total = cy_total = weight_total = 0.0
        for part in geometry.parts:
            if part.is_empty:
                continue
            c = centroid(part)
            w = max(part.length(), 1e-300)
            cx_total += c.x * w
            cy_total += c.y * w
            weight_total += w
        return Point(cx_total / weight_total, cy_total / weight_total)
    if isinstance(geometry, Polygon):
        cx, cy, a = _polygon_centroid(geometry)
        if a == 0.0:
            # Degenerate (zero-area) polygon: fall back to vertex mean.
            coords = geometry.shell.coords[:-1]
            return Point(float(coords[:, 0].mean()), float(coords[:, 1].mean()))
        return Point(cx / a, cy / a)
    if isinstance(geometry, MultiPolygon):
        cx_total = cy_total = area_total = 0.0
        for part in geometry.parts:
            if part.is_empty:
                continue
            cx, cy, a = _polygon_centroid(part)
            cx_total += cx
            cy_total += cy
            area_total += a
        if area_total == 0.0:
            raise GeometryError("centroid of zero-area multipolygon")
        return Point(cx_total / area_total, cy_total / area_total)
    raise GeometryError(f"no centroid for {geometry.geometry_type}")
