"""Low-level segment primitives: orientation and intersection tests.

These are the computational-geometry kernels underlying the refinement
predicates.  They are deliberately branch-simple so the fast engine can
call them in tight loops.
"""

from __future__ import annotations

__all__ = [
    "orientation",
    "on_segment",
    "segments_intersect",
    "segment_intersection_point",
]

_EPS = 1e-12


def orientation(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> int:
    """Return the turn direction of the path a->b->c.

    +1 for counter-clockwise, -1 for clockwise, 0 for collinear (within a
    relative epsilon to absorb float noise on nearly-collinear street
    vertices).
    """
    cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    scale = abs(bx - ax) + abs(by - ay) + abs(cx - ax) + abs(cy - ay)
    if abs(cross) <= _EPS * max(scale, 1.0):
        return 0
    return 1 if cross > 0.0 else -1


def on_segment(
    ax: float, ay: float, bx: float, by: float, px: float, py: float
) -> bool:
    """True when collinear point p lies within the closed segment a-b."""
    return (
        min(ax, bx) - _EPS <= px <= max(ax, bx) + _EPS
        and min(ay, by) - _EPS <= py <= max(ay, by) + _EPS
    )


def segments_intersect(
    ax: float,
    ay: float,
    bx: float,
    by: float,
    cx: float,
    cy: float,
    dx: float,
    dy: float,
) -> bool:
    """True when closed segments a-b and c-d share at least one point."""
    o1 = orientation(ax, ay, bx, by, cx, cy)
    o2 = orientation(ax, ay, bx, by, dx, dy)
    o3 = orientation(cx, cy, dx, dy, ax, ay)
    o4 = orientation(cx, cy, dx, dy, bx, by)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(ax, ay, bx, by, cx, cy):
        return True
    if o2 == 0 and on_segment(ax, ay, bx, by, dx, dy):
        return True
    if o3 == 0 and on_segment(cx, cy, dx, dy, ax, ay):
        return True
    if o4 == 0 and on_segment(cx, cy, dx, dy, bx, by):
        return True
    return False


def segment_intersection_point(
    ax: float,
    ay: float,
    bx: float,
    by: float,
    cx: float,
    cy: float,
    dx: float,
    dy: float,
) -> tuple[float, float] | None:
    """Return the intersection point of properly crossing segments.

    Returns None for non-intersecting or collinear-overlap cases (the
    callers that need overlap handling test :func:`segments_intersect`
    first and treat overlaps separately).
    """
    r_x, r_y = bx - ax, by - ay
    s_x, s_y = dx - cx, dy - cy
    denom = r_x * s_y - r_y * s_x
    if abs(denom) <= _EPS:
        return None
    t = ((cx - ax) * s_y - (cy - ay) * s_x) / denom
    u = ((cx - ax) * r_y - (cy - ay) * r_x) / denom
    if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
        return (ax + t * r_x, ay + t * r_y)
    return None
