"""Distance kernels — the refinement side of the paper's NearestD joins.

``NearestD`` asks, for each point, which polylines lie within distance D;
its refinement step is repeated point-to-segment distance evaluation over
every candidate polyline, which is exactly what these kernels provide
(plus the general geometry-to-geometry distance used by ``ST_DISTANCE``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import MultiLineString, MultiPoint, MultiPolygon
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

from repro.geometry.algorithms.predicates import point_in_polygon
from repro.geometry.algorithms.segments import segments_intersect

__all__ = [
    "point_segment_distance",
    "point_linestring_distance",
    "point_linestring_distance_vectorized",
    "segment_segment_distance",
    "distance",
]


def point_segment_distance(
    px: float, py: float, x1: float, y1: float, x2: float, y2: float
) -> float:
    """Euclidean distance from point p to the closed segment (x1,y1)-(x2,y2)."""
    dx = x2 - x1
    dy = y2 - y1
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return math.hypot(px - x1, py - y1)
    t = ((px - x1) * dx + (py - y1) * dy) / seg_len_sq
    if t < 0.0:
        t = 0.0
    elif t > 1.0:
        t = 1.0
    return math.hypot(px - (x1 + t * dx), py - (y1 + t * dy))


def point_linestring_distance(px: float, py: float, line: LineString) -> float:
    """Minimum distance from a point to a polyline (scalar loop)."""
    coords = line.coords
    if len(coords) == 0:
        return math.inf
    if len(coords) == 1:
        return math.hypot(px - coords[0, 0], py - coords[0, 1])
    best = math.inf
    for i in range(len(coords) - 1):
        d = point_segment_distance(
            px, py, coords[i, 0], coords[i, 1], coords[i + 1, 0], coords[i + 1, 1]
        )
        if d < best:
            best = d
            if best == 0.0:
                break
    return best


def point_linestring_distance_vectorized(px: float, py: float, line: LineString) -> float:
    """Minimum point-to-polyline distance using one vectorised pass.

    This is the fast engine's kernel: all segments are evaluated with numpy
    array arithmetic over the polyline's contiguous coordinate buffer — the
    cache-friendly layout the paper contrasts with GEOS's object churn.
    """
    coords = line.coords
    if len(coords) == 0:
        return math.inf
    if len(coords) == 1:
        return math.hypot(px - coords[0, 0], py - coords[0, 1])
    starts = coords[:-1]
    deltas = coords[1:] - starts
    seg_len_sq = np.einsum("ij,ij->i", deltas, deltas)
    rel = np.array([px, py]) - starts
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(seg_len_sq > 0.0, np.einsum("ij,ij->i", rel, deltas) / seg_len_sq, 0.0)
    t = np.clip(t, 0.0, 1.0)
    closest = starts + t[:, None] * deltas
    diff = np.array([px, py]) - closest
    return float(np.sqrt(np.einsum("ij,ij->i", diff, diff).min()))


def segment_segment_distance(
    ax1: float,
    ay1: float,
    ax2: float,
    ay2: float,
    bx1: float,
    by1: float,
    bx2: float,
    by2: float,
) -> float:
    """Minimum distance between two closed segments (0 when they cross)."""
    if segments_intersect(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2):
        return 0.0
    return min(
        point_segment_distance(ax1, ay1, bx1, by1, bx2, by2),
        point_segment_distance(ax2, ay2, bx1, by1, bx2, by2),
        point_segment_distance(bx1, by1, ax1, ay1, ax2, ay2),
        point_segment_distance(bx2, by2, ax1, ay1, ax2, ay2),
    )


def _linestring_linestring_distance(a: LineString, b: LineString) -> float:
    best = math.inf
    ac = a.coords
    bc = b.coords
    for i in range(len(ac) - 1):
        for j in range(len(bc) - 1):
            d = segment_segment_distance(
                ac[i, 0], ac[i, 1], ac[i + 1, 0], ac[i + 1, 1],
                bc[j, 0], bc[j, 1], bc[j + 1, 0], bc[j + 1, 1],
            )
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
    return best


def _point_polygon_distance(p: Point, polygon: Polygon) -> float:
    if point_in_polygon(p.x, p.y, polygon):
        return 0.0
    best = math.inf
    for ring in polygon.rings:
        ring_line = LineString(ring.coords)
        d = point_linestring_distance(p.x, p.y, ring_line)
        if d < best:
            best = d
    return best


def _boundary_lines(geometry: Geometry) -> list[LineString]:
    """Decompose a geometry's boundary into linestrings for distance tests."""
    if isinstance(geometry, LineString):
        return [geometry]
    if isinstance(geometry, Polygon):
        return [LineString(ring.coords) for ring in geometry.rings if not ring.is_empty]
    if isinstance(geometry, (MultiLineString, MultiPolygon)):
        lines: list[LineString] = []
        for part in geometry.parts:
            lines.extend(_boundary_lines(part))
        return lines
    raise GeometryError(f"no boundary decomposition for {geometry.geometry_type}")


def distance(a: Geometry, b: Geometry) -> float:
    """Minimum Euclidean distance between two geometries.

    Covers the type combinations the engines need; returns ``inf`` when
    either side is empty (so D-threshold filters simply never match).
    """
    if a.is_empty or b.is_empty:
        return math.inf
    if isinstance(a, (MultiPoint, MultiLineString, MultiPolygon)):
        return min(distance(part, b) for part in a.parts)
    if isinstance(b, (MultiPoint, MultiLineString, MultiPolygon)):
        return min(distance(a, part) for part in b.parts)
    if isinstance(a, Point) and isinstance(b, Point):
        return math.hypot(a.x - b.x, a.y - b.y)
    if isinstance(a, Point) and isinstance(b, LineString):
        return point_linestring_distance(a.x, a.y, b)
    if isinstance(b, Point) and isinstance(a, LineString):
        return point_linestring_distance(b.x, b.y, a)
    if isinstance(a, Point) and isinstance(b, Polygon):
        return _point_polygon_distance(a, b)
    if isinstance(b, Point) and isinstance(a, Polygon):
        return _point_polygon_distance(b, a)
    # Line/line, line/polygon, polygon/polygon: zero when interiors touch,
    # else boundary-to-boundary minimum.
    if isinstance(a, Polygon) and isinstance(b, (LineString, Polygon)):
        probe = b.coords[0] if isinstance(b, LineString) else b.shell.coords[0]
        if point_in_polygon(float(probe[0]), float(probe[1]), a):
            return 0.0
    if isinstance(b, Polygon) and isinstance(a, (LineString, Polygon)):
        probe = a.coords[0] if isinstance(a, LineString) else a.shell.coords[0]
        if point_in_polygon(float(probe[0]), float(probe[1]), b):
            return 0.0
    best = math.inf
    for line_a in _boundary_lines(a):
        for line_b in _boundary_lines(b):
            d = _linestring_linestring_distance(line_a, line_b)
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
    return best
