"""Computational-geometry kernels behind the refinement predicates."""

from repro.geometry.algorithms import distance, measures, predicates, segments

__all__ = ["distance", "measures", "predicates", "segments"]
