"""Bulk WKT → column conversion for the data loaders.

The hot case — point datasets like the paper's taxi pickups — parses the
whole file in three vectorised steps (regex capture per line, one join,
one ``np.asarray(..., dtype=float64)``) instead of building a Python
object per row.  numpy's string→float64 conversion is correctly rounded
(strtod), so the coordinates are bit-identical to ``float(token)`` and
therefore to the per-row object parser.

Anything that is not a uniform point file falls back to the per-row WKT
reader and still lands in a column via ``from_entries``.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

import numpy as np

from repro.columnar.column import GeometryColumn, _point_only_data
from repro.geometry.wkt import loads as wkt_loads

__all__ = ["column_from_wkt"]

_POINT_LINE = re.compile(r"\s*POINT\s*\(\s*(\S+)\s+(\S+)\s*\)\s*$", re.IGNORECASE)


def column_from_wkt(
    texts: Iterable[str], payloads: Sequence[object] | None = None
) -> GeometryColumn | None:
    """Parse WKT strings into a :class:`GeometryColumn` in bulk.

    Returns ``None`` when a geometry type outside the columnar model
    (e.g. ``GEOMETRYCOLLECTION``) appears; malformed WKT raises, exactly
    like the scalar reader.
    """
    texts = list(texts)
    n = len(texts)
    tokens: list[str] | None = []
    for text in texts:
        match = _POINT_LINE.match(text)
        if match is None:
            tokens = None
            break
        tokens.append(match.group(1))
        tokens.append(match.group(2))
    if tokens is not None:
        values = np.asarray(tokens, dtype=np.float64)
        coords = np.ascontiguousarray(values.reshape(n, 2))
        payload_list = list(payloads) if payloads is not None else [None] * n
        if len(payload_list) != n:
            raise ValueError("payloads length does not match texts")
        return GeometryColumn(_point_only_data(coords), payload_list)
    if payloads is None:
        payloads = [None] * n
    return GeometryColumn.from_entries(
        (payload, wkt_loads(text)) for payload, text in zip(payloads, texts)
    )
