"""Packed columnar geometry storage.

``GeometryColumn`` stores a batch of ``(payload, geometry)`` entries as a
GeoArrow-style nested layout over flat numpy buffers:

    coords : float64 (ncoords, 2)   every vertex of every geometry
    rings  : int32   (nrings + 1)   ring r covers coords[rings[r]:rings[r+1]]
    parts  : int32   (nparts + 1)   part p covers rings  [parts[p]:parts[p+1]]
    geoms  : int32   (n + 1)        geometry i covers parts[geoms[i]:geoms[i+1]]
    types  : uint8   (n,)           geometry type codes (POINT..MULTIPOLYGON)
    bbox   : float64 (n, 4)         min_x, min_y, max_x, max_y per geometry
                                    (the ``Envelope.empty()`` sentinel — inf,
                                    inf, -inf, -inf — marks empty geometries)

Empty geometries have zero parts; empty *members* of a multi geometry are
parts with zero rings, so part counts round-trip exactly.  A column built
from live objects keeps them in a materialisation memo, so ``geometry(i)``
returns the *original* object (preserving identity-keyed caches); decoded
columns materialise lazily from the buffers.

Slicing (``take``/``slice``) composes an index array over the shared
buffers — no coordinates are copied until ``compact()`` or ``to_bytes()``.
The binary encoding is versioned and nbytes-exact: raw little-endian
buffer dumps, with an all-points compact layout (flag 0x1) that omits the
offset/type/bbox buffers entirely, and varint-framed payload columns.
"""

from __future__ import annotations

import pickle
import struct
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import MultiLineString, MultiPoint, MultiPolygon
from repro.geometry.point import Point
from repro.geometry.polygon import LinearRing, Polygon

__all__ = ["GeometryColumn"]

_POINT = 1
_LINESTRING = 2
_POLYGON = 3
_MULTIPOINT = 4
_MULTILINESTRING = 5
_MULTIPOLYGON = 6

_TYPE_CODE: dict[type, int] = {
    Point: _POINT,
    LineString: _LINESTRING,
    Polygon: _POLYGON,
    MultiPoint: _MULTIPOINT,
    MultiLineString: _MULTILINESTRING,
    MultiPolygon: _MULTIPOLYGON,
}

_INF = float("inf")
_EMPTY_BBOX = (_INF, _INF, -_INF, -_INF)

_MAGIC = b"GCOL"
_VERSION = 1
_FLAG_COMPACT_POINTS = 0x01

_PAYLOAD_NONE = 0
_PAYLOAD_INT64 = 1
_PAYLOAD_STR = 2
_PAYLOAD_OBJECT = 3
_PAYLOAD_INT64_PAIR = 4  # (key, id) shuffle-record payloads

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


class _ColumnData:
    """The shared, immutable buffer set behind one or more column views."""

    __slots__ = (
        "coords",
        "rings",
        "parts",
        "geoms",
        "types",
        "count",
        "_bbox",
        "_coord_starts",
        "_geom_cache",
        "is_point_only",
    )

    def __init__(self, coords, rings, parts, geoms, types, bbox=None):
        self.coords = coords
        self.rings = rings
        self.parts = parts
        self.geoms = geoms
        self.types = types
        self.count = len(types)
        self._bbox = bbox
        self._coord_starts = None
        self._geom_cache: dict[int, Geometry] = {}
        self.is_point_only = bool(
            len(coords) == self.count and (self.count == 0 or bool(np.all(types == _POINT)))
        )

    @property
    def bbox(self) -> np.ndarray:
        if self._bbox is None:
            # Only the all-points compact decode leaves bbox unset; for
            # points the bbox degenerates to (x, y, x, y).
            self._bbox = np.concatenate([self.coords, self.coords], axis=1)
        return self._bbox

    @property
    def coord_starts(self) -> np.ndarray:
        if self._coord_starts is None:
            if self.is_point_only:
                self._coord_starts = np.arange(self.count + 1, dtype=np.int32)
            else:
                self._coord_starts = self.rings[self.parts[self.geoms]]
        return self._coord_starts

    def geometry(self, j: int) -> Geometry:
        cached = self._geom_cache.get(j)
        if cached is None:
            cached = self._materialize(j)
            self._geom_cache[j] = cached
        return cached

    # -- materialisation ------------------------------------------------

    def _ring(self, r: int) -> LinearRing:
        return LinearRing(self.coords[self.rings[r] : self.rings[r + 1]])

    def _polygon_from_part(self, p: int) -> Polygon:
        r0 = int(self.parts[p])
        r1 = int(self.parts[p + 1])
        if r0 == r1:
            return Polygon.empty()
        return Polygon(self._ring(r0), [self._ring(r) for r in range(r0 + 1, r1)])

    def _point_from_part(self, p: int) -> Point:
        r0 = int(self.parts[p])
        if r0 == int(self.parts[p + 1]):
            return Point.empty()
        c = int(self.rings[r0])
        return Point(float(self.coords[c, 0]), float(self.coords[c, 1]))

    def _linestring_from_part(self, p: int) -> LineString:
        r0 = int(self.parts[p])
        if r0 == int(self.parts[p + 1]):
            return LineString.empty()
        return LineString(self.coords[self.rings[r0] : self.rings[r0 + 1]])

    def _materialize(self, j: int) -> Geometry:
        if self.is_point_only:
            return Point(float(self.coords[j, 0]), float(self.coords[j, 1]))
        code = int(self.types[j])
        p0 = int(self.geoms[j])
        p1 = int(self.geoms[j + 1])
        if code == _POINT:
            return Point.empty() if p0 == p1 else self._point_from_part(p0)
        if code == _LINESTRING:
            return LineString.empty() if p0 == p1 else self._linestring_from_part(p0)
        if code == _POLYGON:
            return Polygon.empty() if p0 == p1 else self._polygon_from_part(p0)
        if code == _MULTIPOINT:
            return MultiPoint(self._point_from_part(p) for p in range(p0, p1))
        if code == _MULTILINESTRING:
            return MultiLineString(self._linestring_from_part(p) for p in range(p0, p1))
        if code == _MULTIPOLYGON:
            return MultiPolygon(self._polygon_from_part(p) for p in range(p0, p1))
        raise GeometryError(f"unknown geometry type code {code}")


class _DataBuilder:
    """Accumulates the nested offset buffers during bulk conversion."""

    __slots__ = ("chunks", "ncoords", "rings", "parts", "geoms")

    def __init__(self) -> None:
        self.chunks: list[np.ndarray] = []
        self.ncoords = 0
        self.rings = [0]
        self.parts = [0]
        self.geoms = [0]

    def add_ring(self, coords: np.ndarray) -> None:
        if len(coords):
            self.chunks.append(coords)
            self.ncoords += len(coords)
        self.rings.append(self.ncoords)

    def end_part(self) -> None:
        self.parts.append(len(self.rings) - 1)

    def end_geom(self) -> None:
        self.geoms.append(len(self.parts) - 1)

    def add_point_part(self, point: Point) -> None:
        if point.is_empty:
            self.end_part()
            return
        self.add_ring(np.array([[point.x, point.y]], dtype=np.float64))
        self.end_part()

    def add_linestring_part(self, line: LineString) -> None:
        if line.is_empty:
            self.end_part()
            return
        self.add_ring(line.coords)
        self.end_part()

    def add_polygon_part(self, polygon: Polygon) -> None:
        if polygon.is_empty:
            self.end_part()
            return
        for ring in polygon.rings:
            self.add_ring(ring.coords)
        self.end_part()

    def finish(self, types: np.ndarray, bbox: np.ndarray) -> _ColumnData:
        if self.chunks:
            coords = np.ascontiguousarray(np.concatenate(self.chunks, axis=0))
        else:
            coords = np.empty((0, 2), dtype=np.float64)
        return _ColumnData(
            coords,
            np.asarray(self.rings, dtype=np.int32),
            np.asarray(self.parts, dtype=np.int32),
            np.asarray(self.geoms, dtype=np.int32),
            types,
            bbox,
        )


def _point_only_data(coords: np.ndarray) -> _ColumnData:
    n = len(coords)
    unit = np.arange(n + 1, dtype=np.int32)
    types = np.full(n, _POINT, dtype=np.uint8)
    return _ColumnData(coords, unit, unit, unit, types, None)


def _convert(geometries: Sequence[Geometry]) -> _ColumnData | None:
    n = len(geometries)
    fast = True
    for g in geometries:
        if type(g) is not Point or g.is_empty:
            fast = False
            break
    if fast:
        coords = np.array([(g.x, g.y) for g in geometries], dtype=np.float64).reshape(n, 2)
        return _point_only_data(np.ascontiguousarray(coords))

    builder = _DataBuilder()
    types = np.empty(n, dtype=np.uint8)
    bbox = np.empty((n, 4), dtype=np.float64)
    for i, g in enumerate(geometries):
        code = _TYPE_CODE.get(type(g))
        if code is None:
            return None  # GeometryCollection etc: caller keeps the object path
        types[i] = code
        env = g.envelope
        bbox[i] = _EMPTY_BBOX if env.is_empty else (env.min_x, env.min_y, env.max_x, env.max_y)
        if code == _POINT:
            if not g.is_empty:
                builder.add_point_part(g)
        elif code == _LINESTRING:
            if not g.is_empty:
                builder.add_linestring_part(g)
        elif code == _POLYGON:
            if not g.is_empty:
                builder.add_polygon_part(g)
        elif code == _MULTIPOINT:
            for part in g.parts:
                builder.add_point_part(part)
        elif code == _MULTILINESTRING:
            for part in g.parts:
                builder.add_linestring_part(part)
        else:
            for part in g.parts:
                builder.add_polygon_part(part)
        builder.end_geom()
    return builder.finish(types, bbox)


def _encode_payloads(payloads: Sequence[object]) -> tuple[int, bytes]:
    kind = _PAYLOAD_NONE
    has_none = False
    for value in payloads:
        if value is None:
            has_none = True
            continue
        tp = type(value)
        if tp is int and _INT64_MIN <= value <= _INT64_MAX:
            candidate = _PAYLOAD_INT64
        elif tp is str:
            candidate = _PAYLOAD_STR
        elif (
            tp is tuple
            and len(value) == 2
            and type(value[0]) is int
            and type(value[1]) is int
            and _INT64_MIN <= value[0] <= _INT64_MAX
            and _INT64_MIN <= value[1] <= _INT64_MAX
        ):
            candidate = _PAYLOAD_INT64_PAIR
        else:
            kind = _PAYLOAD_OBJECT
            break
        if kind == _PAYLOAD_NONE:
            kind = candidate
        elif kind != candidate:
            kind = _PAYLOAD_OBJECT
            break
    if kind == _PAYLOAD_NONE:
        return kind, b""
    if has_none and kind != _PAYLOAD_OBJECT:
        # Mixed None/value columns have no compact lane; pickle is exact.
        kind = _PAYLOAD_OBJECT
    if kind == _PAYLOAD_INT64:
        return kind, np.asarray(payloads, dtype=np.int64).tobytes()
    if kind == _PAYLOAD_INT64_PAIR:
        # Shuffle-record payloads (tile key, row id) are small naturals —
        # zigzag varints beat fixed int64 lanes by ~5x there.
        out = bytearray()
        for a, b in payloads:
            _write_varint(out, (a << 1) ^ (a >> 63))
            _write_varint(out, (b << 1) ^ (b >> 63))
        return kind, bytes(out)
    if kind == _PAYLOAD_STR:
        out = bytearray()
        for value in payloads:
            encoded = value.encode("utf-8")
            _write_varint(out, len(encoded))
            out += encoded
        return kind, bytes(out)
    return kind, pickle.dumps(list(payloads), protocol=pickle.HIGHEST_PROTOCOL)


def _decode_payloads(kind: int, blob: bytes, n: int) -> list[object]:
    if kind == _PAYLOAD_NONE:
        return [None] * n
    if kind == _PAYLOAD_INT64:
        return np.frombuffer(blob, dtype="<i8", count=n).tolist()
    if kind == _PAYLOAD_INT64_PAIR:
        values = []
        pos = 0
        for _ in range(n):
            ua, pos = _read_varint(blob, pos)
            ub, pos = _read_varint(blob, pos)
            values.append(((ua >> 1) ^ -(ua & 1), (ub >> 1) ^ -(ub & 1)))
        return values
    if kind == _PAYLOAD_STR:
        values: list[object] = []
        pos = 0
        for _ in range(n):
            length, pos = _read_varint(blob, pos)
            values.append(blob[pos : pos + length].decode("utf-8"))
            pos += length
        return values
    if kind == _PAYLOAD_OBJECT:
        values = pickle.loads(blob)
        if len(values) != n:
            raise ValueError("payload column length mismatch")
        return values
    raise ValueError(f"unknown payload kind {kind}")


class GeometryColumn:
    """A batch of (payload, geometry) entries over shared packed buffers."""

    __slots__ = ("_data", "_payloads", "_sel")

    def __init__(self, data: _ColumnData, payloads: list[object], sel: np.ndarray | None = None):
        self._data = data
        self._payloads = payloads
        self._sel = sel

    # -- construction ---------------------------------------------------

    @classmethod
    def from_entries(cls, entries: Iterable[tuple[object, Geometry]]) -> "GeometryColumn | None":
        """Bulk-convert ``(payload, geometry)`` pairs; None if unconvertible.

        The originals are seeded into the materialisation memo so that
        ``geometry(i)`` hands back the very same objects — identity-keyed
        caches (prepared geometries) keep working.
        """
        entries = list(entries)
        payloads = [p for p, _ in entries]
        geometries = [g for _, g in entries]
        for g in geometries:
            if g is None:
                return None
        data = _convert(geometries)
        if data is None:
            return None
        for j, g in enumerate(geometries):
            data._geom_cache[j] = g
        return cls(data, payloads)

    @classmethod
    def from_geometries(
        cls, geometries: Sequence[Geometry], payloads: Sequence[object] | None = None
    ) -> "GeometryColumn | None":
        if payloads is None:
            payloads = [None] * len(geometries)
        return cls.from_entries(zip(payloads, geometries))

    # -- basics ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sel) if self._sel is not None else self._data.count

    def payload(self, i: int) -> object:
        j = int(self._sel[i]) if self._sel is not None else i
        return self._payloads[j]

    def geometry(self, i: int) -> Geometry:
        j = int(self._sel[i]) if self._sel is not None else i
        return self._data.geometry(j)

    def entry(self, i: int) -> tuple[object, Geometry]:
        j = int(self._sel[i]) if self._sel is not None else i
        return self._payloads[j], self._data.geometry(j)

    def entries(self) -> Iterator[tuple[object, Geometry]]:
        for i in range(len(self)):
            yield self.entry(i)

    def geometries(self) -> Iterator[Geometry]:
        for i in range(len(self)):
            yield self.geometry(i)

    def payloads(self) -> list[object]:
        if self._sel is None:
            return list(self._payloads)
        return [self._payloads[int(j)] for j in self._sel]

    # -- zero-copy slicing ----------------------------------------------

    def take(self, indices) -> "GeometryColumn":
        """Select rows by position — an index array, no coordinate copies."""
        sel = np.asarray(indices, dtype=np.int64)
        if self._sel is not None:
            sel = self._sel[sel]
        return GeometryColumn(self._data, self._payloads, sel)

    def slice(self, start: int, stop: int) -> "GeometryColumn":
        if self._sel is not None:
            return GeometryColumn(self._data, self._payloads, self._sel[start:stop])
        stop = min(stop, self._data.count)
        return self.take(np.arange(start, max(start, stop), dtype=np.int64))

    # -- columnar accessors ---------------------------------------------

    def types_array(self) -> np.ndarray:
        if self._sel is None:
            return self._data.types
        return self._data.types[self._sel]

    def num_points_array(self) -> np.ndarray:
        starts = self._data.coord_starts
        if self._sel is None:
            return np.diff(starts).astype(np.int64)
        sel = self._sel
        return (starts[sel + 1] - starts[sel]).astype(np.int64)

    def bounds(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-geometry ``(min_x, min_y, max_x, max_y)`` arrays."""
        bbox = self._data.bbox
        if self._sel is not None:
            bbox = bbox[self._sel]
        return bbox[:, 0], bbox[:, 1], bbox[:, 2], bbox[:, 3]

    def point_rows(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(positions, xs, ys)`` for the non-empty point rows.

        Coordinates are read straight from the packed buffer — for a pure
        unsliced point column the returned xs/ys are zero-copy views.
        """
        data = self._data
        if data.is_point_only:
            if self._sel is None:
                pos = np.arange(data.count, dtype=np.int64)
                return pos, data.coords[:, 0], data.coords[:, 1]
            pos = np.arange(len(self._sel), dtype=np.int64)
            picked = data.coords[self._sel]
            return pos, picked[:, 0], picked[:, 1]
        types = self.types_array()
        counts = self.num_points_array()
        pos = np.flatnonzero((types == _POINT) & (counts > 0))
        starts = data.coord_starts
        base = starts[self._sel] if self._sel is not None else starts[:-1]
        ci = base[pos]
        return pos, data.coords[ci, 0], data.coords[ci, 1]

    # -- sizing ---------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Exact geometry-buffer bytes of this column's binary encoding.

        Matches ``len(to_bytes())`` minus the payload framing — the honest
        size of what ships for the geometry side of the selected rows.
        """
        n = len(self)
        coord_bytes = 16 * int(self.num_points_array().sum())
        if self._data.is_point_only:
            return 12 + coord_bytes
        geoms = self._data.geoms
        parts = self._data.parts
        if self._sel is None:
            nparts = int(geoms[-1])
            nrings = int(parts[-1])
        else:
            sel = self._sel
            nparts = int((geoms[sel + 1] - geoms[sel]).sum())
            nrings = int((parts[geoms[sel + 1]] - parts[geoms[sel]]).sum())
        return 24 + 4 * (n + 1) + 4 * (nparts + 1) + 4 * (nrings + 1) + n + 32 * n + coord_bytes

    @property
    def column_nbytes(self) -> int:
        """Sizing hook for cache accounting (`estimate_*` integrations)."""
        return self.nbytes

    # -- compaction and binary encoding ---------------------------------

    def compact(self) -> "GeometryColumn":
        """Materialise the selection into dense buffers (copies coords)."""
        if self._sel is None:
            return self
        data = self._data
        sel = self._sel
        payloads = [self._payloads[int(j)] for j in sel]
        if data.is_point_only:
            coords = np.ascontiguousarray(data.coords[sel])
            return GeometryColumn(_point_only_data(coords), payloads)
        builder = _DataBuilder()
        for j in sel.tolist():
            p0 = int(data.geoms[j])
            p1 = int(data.geoms[j + 1])
            for p in range(p0, p1):
                r0 = int(data.parts[p])
                r1 = int(data.parts[p + 1])
                for r in range(r0, r1):
                    builder.add_ring(data.coords[data.rings[r] : data.rings[r + 1]])
                builder.end_part()
            builder.end_geom()
        types = np.ascontiguousarray(data.types[sel])
        bbox = np.ascontiguousarray(data.bbox[sel])
        return GeometryColumn(builder.finish(types, bbox), payloads)

    def to_bytes(self) -> bytes:
        """Versioned binary encoding: raw nbytes-exact buffer dumps."""
        if self._sel is not None:
            return self.compact().to_bytes()
        from repro.columnar.stats import COLUMNAR_STATS

        data = self._data
        n = data.count
        kind, payload_blob = _encode_payloads(self._payloads)
        out = bytearray()
        compact = data.is_point_only
        flags = _FLAG_COMPACT_POINTS if compact else 0
        out += _MAGIC
        out += struct.pack("<BBBBI", _VERSION, flags, kind, 0, n)
        if not compact:
            ncoords = len(data.coords)
            nrings = len(data.rings) - 1
            nparts = len(data.parts) - 1
            out += struct.pack("<III", ncoords, nrings, nparts)
            out += np.ascontiguousarray(data.geoms, dtype="<i4").tobytes()
            out += np.ascontiguousarray(data.parts, dtype="<i4").tobytes()
            out += np.ascontiguousarray(data.rings, dtype="<i4").tobytes()
            out += data.types.tobytes()
            out += np.ascontiguousarray(data.bbox, dtype="<f8").tobytes()
        out += np.ascontiguousarray(data.coords, dtype="<f8").tobytes()
        out += struct.pack("<I", len(payload_blob))
        out += payload_blob
        encoded = bytes(out)
        COLUMNAR_STATS.columns_encoded += 1
        COLUMNAR_STATS.encoded_bytes += len(encoded)
        return encoded

    @classmethod
    def from_bytes(cls, blob: bytes) -> "GeometryColumn":
        if blob[:4] != _MAGIC:
            raise ValueError("not a GeometryColumn encoding (bad magic)")
        version, flags, kind, _, n = struct.unpack_from("<BBBBI", blob, 4)
        if version != _VERSION:
            raise ValueError(f"unsupported GeometryColumn encoding version {version}")
        pos = 12
        if flags & _FLAG_COMPACT_POINTS:
            coords = np.frombuffer(blob, dtype="<f8", count=2 * n, offset=pos).reshape(n, 2)
            pos += 16 * n
            data = _point_only_data(coords)
        else:
            ncoords, nrings, nparts = struct.unpack_from("<III", blob, pos)
            pos += 12
            geoms = np.frombuffer(blob, dtype="<i4", count=n + 1, offset=pos)
            pos += 4 * (n + 1)
            parts = np.frombuffer(blob, dtype="<i4", count=nparts + 1, offset=pos)
            pos += 4 * (nparts + 1)
            rings = np.frombuffer(blob, dtype="<i4", count=nrings + 1, offset=pos)
            pos += 4 * (nrings + 1)
            types = np.frombuffer(blob, dtype=np.uint8, count=n, offset=pos)
            pos += n
            bbox = np.frombuffer(blob, dtype="<f8", count=4 * n, offset=pos).reshape(n, 4)
            pos += 32 * n
            coords = np.frombuffer(blob, dtype="<f8", count=2 * ncoords, offset=pos)
            coords = coords.reshape(ncoords, 2)
            pos += 16 * ncoords
            data = _ColumnData(coords, rings, parts, geoms, types, bbox)
        (blob_len,) = struct.unpack_from("<I", blob, pos)
        pos += 4
        payloads = _decode_payloads(kind, blob[pos : pos + blob_len], n)
        return cls(data, payloads)

    def __reduce__(self):
        # Pickling a column (pool payloads, spawn shipping, shuffle blobs)
        # automatically ships the compact binary encoding, decoded once on
        # the receiving side.
        return (GeometryColumn.from_bytes, (self.to_bytes(),))

    # -- cache integration ----------------------------------------------

    def update_hash(self, h, hash_value) -> None:
        """Stream the column's content into a hasher (cache fingerprints).

        ``hash_value`` is the caller's recursive value hasher, used for
        the payload column.
        """
        col = self.compact()
        data = col._data
        h.update(struct.pack("<q", data.count))
        h.update(data.types.tobytes())
        h.update(np.ascontiguousarray(data.geoms, dtype="<i4").tobytes())
        h.update(np.ascontiguousarray(data.parts, dtype="<i4").tobytes())
        h.update(np.ascontiguousarray(data.rings, dtype="<i4").tobytes())
        h.update(np.ascontiguousarray(data.coords, dtype="<f8").tobytes())
        hash_value(h, col._payloads)

    def __repr__(self) -> str:
        kind = "points" if self._data.is_point_only else "mixed"
        sliced = "" if self._sel is None else f", sliced from {self._data.count}"
        return f"GeometryColumn({len(self)} {kind}{sliced})"
