"""Columnar shuffle blocks.

A :class:`ColumnBlock` replaces a shuffle bucket's Python list of routed
``(key, (id, geometry))`` records with one packed column.  Iteration
yields value-identical records (original key/id/geometry objects while
in-process), so the reduce side is oblivious; pickling the block for a
spawn-style pool ships the compact binary encoding instead of an object
graph.

``charge_bytes`` is the exact total the per-record ``estimate_bytes``
walk would have produced — the simulated ``SHUFFLE_BYTES`` charges stay
byte-identical to the object path, while the honest encoded size is
tracked in :data:`repro.columnar.stats.COLUMNAR_STATS`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.columnar.column import GeometryColumn
from repro.geometry.base import Geometry

__all__ = ["ColumnBlock"]


class ColumnBlock:
    __slots__ = ("_column", "charge_bytes")

    def __init__(self, column: GeometryColumn, charge_bytes: float):
        self._column = column
        self.charge_bytes = charge_bytes

    @classmethod
    def from_records(cls, records: Sequence[object]) -> "ColumnBlock | None":
        """Convert a bucket of ``(key, (id, geometry))`` records; None if not that shape."""
        if not records:
            return None
        for record in records:
            if (
                type(record) is not tuple
                or len(record) != 2
                or type(record[1]) is not tuple
                or len(record[1]) != 2
                or not isinstance(record[1][1], Geometry)
            ):
                return None
        column = GeometryColumn.from_entries(
            ((key, rid), geometry) for key, (rid, geometry) in records
        )
        if column is None:
            return None
        from repro.spark.shuffle import records_bytes

        return cls(column, records_bytes(records))

    @property
    def column(self) -> GeometryColumn:
        return self._column

    @property
    def nbytes(self) -> int:
        return self._column.nbytes

    def __len__(self) -> int:
        return len(self._column)

    def __iter__(self) -> Iterator[tuple[object, tuple[object, Geometry]]]:
        column = self._column
        for i in range(len(column)):
            key, rid = column.payload(i)
            yield (key, (rid, column.geometry(i)))

    def __reduce__(self):
        return (ColumnBlock, (self._column, self.charge_bytes))

    def __repr__(self) -> str:
        return f"ColumnBlock({len(self._column)} records)"
