"""Off-registry accounting for the columnar data plane.

These numbers are deliberately *not* REGISTRY counters: the byte-identity
invariant (DESIGN.md §12/§13) requires the columnar and object paths to
produce identical counter dictionaries, so the honest encoded-bytes
accounting lives here and is surfaced by ``repro.bench columnar`` only.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["COLUMNAR_STATS", "ColumnarStats"]


@dataclass
class ColumnarStats:
    columns_encoded: int = 0
    encoded_bytes: int = 0
    shuffle_blocks: int = 0
    shuffle_block_nbytes: int = 0
    shuffle_object_bytes: int = 0

    def reset(self) -> None:
        self.columns_encoded = 0
        self.encoded_bytes = 0
        self.shuffle_blocks = 0
        self.shuffle_block_nbytes = 0
        self.shuffle_object_bytes = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


COLUMNAR_STATS = ColumnarStats()
