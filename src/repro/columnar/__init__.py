"""Columnar geometry data plane.

A :class:`GeometryColumn` stores a batch of geometries as flat numpy
buffers (GeoArrow-style nested offsets) plus a parallel payload column.
Partition slices are O(1) index arrays into the shared buffers; the
versioned binary encoding (``to_bytes``/``from_bytes``) is what ships
across simulated shuffles and process pools.

The object path remains the reference oracle: every columnar code path
is required to produce byte-identical results (pairs, order, counters,
simulated seconds, profiles, events) and is gated by the ``columnar=``
knob on ``JoinConfig``/``RuntimeConfig``.
"""

from .block import ColumnBlock
from .column import GeometryColumn
from .io import column_from_wkt
from .stats import COLUMNAR_STATS, ColumnarStats

__all__ = [
    "COLUMNAR_STATS",
    "ColumnBlock",
    "ColumnarStats",
    "GeometryColumn",
    "column_from_wkt",
]
