"""STR-packed static R-tree — the paper's ``STRtree`` filtering index.

Fig 2 of the paper builds a JTS ``STRtree`` over the broadcast right side
and probes it with every left-side envelope; ISP-MC does the same in its
SpatialJoin node.  This implementation uses Sort-Tile-Recursive bulk
loading (Leutenegger et al.) and supports envelope queries, point queries
and nearest-neighbour search with envelope-distance pruning.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Generic, Iterable, Iterator, TypeVar

from repro.errors import SpatialIndexError
from repro.geometry.envelope import Envelope

__all__ = ["STRtree", "RTreeNode"]

T = TypeVar("T")


class RTreeNode(Generic[T]):
    """A node of the packed R-tree.

    Leaf nodes carry ``items`` (payload, envelope) pairs; interior nodes
    carry ``children``.  Exposed for tests and for the cost model, which
    counts node visits.
    """

    __slots__ = ("envelope", "children", "items", "level")

    def __init__(
        self,
        envelope: Envelope,
        children: list["RTreeNode[T]"] | None = None,
        items: list[tuple[T, Envelope]] | None = None,
        level: int = 0,
    ):
        self.envelope = envelope
        self.children = children
        self.items = items
        self.level = level

    @property
    def is_leaf(self) -> bool:
        return self.items is not None


class STRtree(Generic[T]):
    """Sort-Tile-Recursive bulk-loaded R-tree over (item, envelope) pairs.

    The tree is immutable once built.  ``node_capacity`` defaults to 10,
    matching JTS's STRtree default.  Statistics (`nodes_visited`) accrue
    across queries and feed the cluster cost model; call
    :meth:`reset_stats` between measured phases.
    """

    def __init__(
        self,
        entries: Iterable[tuple[T, Envelope]] = (),
        node_capacity: int = 10,
    ):
        if node_capacity < 2:
            raise SpatialIndexError(f"node_capacity must be >= 2, got {node_capacity}")
        self._node_capacity = node_capacity
        self._entries: list[tuple[T, Envelope]] = [
            (item, env) for item, env in entries if not env.is_empty
        ]
        self._root: RTreeNode[T] | None = None
        self._built = False
        self.nodes_visited = 0

    def insert(self, item: T, envelope: Envelope) -> None:
        """Add an entry; only legal before the first query (STR is static)."""
        if self._built:
            raise SpatialIndexError("STRtree cannot be modified after it has been built")
        if not envelope.is_empty:
            self._entries.append((item, envelope))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def root(self) -> RTreeNode[T] | None:
        """The root node (builds the tree on first access); None when empty."""
        self.build()
        return self._root

    def build(self) -> None:
        """Bulk-load the tree (idempotent; also triggered by first query)."""
        if self._built:
            return
        self._built = True
        if not self._entries:
            self._root = None
            return
        leaves = self._pack_leaves()
        level = 1
        nodes = leaves
        while len(nodes) > 1:
            nodes = self._pack_interior(nodes, level)
            level += 1
        self._root = nodes[0]

    def _pack_leaves(self) -> list[RTreeNode[T]]:
        entries = sorted(
            self._entries, key=lambda entry: (entry[1].min_x + entry[1].max_x)
        )
        slice_count = max(1, math.ceil(math.sqrt(math.ceil(len(entries) / self._node_capacity))))
        slice_size = max(1, math.ceil(len(entries) / slice_count))
        leaves: list[RTreeNode[T]] = []
        for start in range(0, len(entries), slice_size):
            vertical = sorted(
                entries[start : start + slice_size],
                key=lambda entry: (entry[1].min_y + entry[1].max_y),
            )
            for leaf_start in range(0, len(vertical), self._node_capacity):
                chunk = vertical[leaf_start : leaf_start + self._node_capacity]
                envelope = Envelope.empty()
                for _, env in chunk:
                    envelope = envelope.union(env)
                leaves.append(RTreeNode(envelope, items=chunk, level=0))
        return leaves

    def _pack_interior(
        self, nodes: list[RTreeNode[T]], level: int
    ) -> list[RTreeNode[T]]:
        nodes = sorted(nodes, key=lambda n: (n.envelope.min_x + n.envelope.max_x))
        slice_count = max(1, math.ceil(math.sqrt(math.ceil(len(nodes) / self._node_capacity))))
        slice_size = max(1, math.ceil(len(nodes) / slice_count))
        parents: list[RTreeNode[T]] = []
        for start in range(0, len(nodes), slice_size):
            vertical = sorted(
                nodes[start : start + slice_size],
                key=lambda n: (n.envelope.min_y + n.envelope.max_y),
            )
            for group_start in range(0, len(vertical), self._node_capacity):
                chunk = vertical[group_start : group_start + self._node_capacity]
                envelope = Envelope.empty()
                for child in chunk:
                    envelope = envelope.union(child.envelope)
                parents.append(RTreeNode(envelope, children=chunk, level=level))
        return parents

    def reset_stats(self) -> None:
        """Zero the node-visit counter."""
        self.nodes_visited = 0

    def query(self, envelope: Envelope) -> list[T]:
        """Return items whose envelopes intersect the query envelope."""
        return [item for item, _ in self.query_entries(envelope)]

    def query_entries(self, envelope: Envelope) -> list[tuple[T, Envelope]]:
        """Like :meth:`query` but returning (item, envelope) pairs."""
        self.build()
        results: list[tuple[T, Envelope]] = []
        if self._root is None or envelope.is_empty:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_visited += 1
            if not node.envelope.intersects(envelope):
                continue
            if node.is_leaf:
                for item, item_env in node.items:
                    if item_env.intersects(envelope):
                        results.append((item, item_env))
            else:
                stack.extend(node.children)
        return results

    def query_point(self, x: float, y: float) -> list[T]:
        """Return items whose envelopes contain the point."""
        return self.query(Envelope.of_point(x, y))

    def iter_all(self) -> Iterator[tuple[T, Envelope]]:
        """Iterate over every stored entry (build not required)."""
        return iter(self._entries)

    def nearest(
        self,
        x: float,
        y: float,
        k: int = 1,
        max_distance: float = math.inf,
        item_distance: Callable[[float, float, T], float] | None = None,
    ) -> list[tuple[T, float]]:
        """Return up to ``k`` nearest items with their distances.

        Traversal is best-first over envelope distance; when
        ``item_distance`` is given it supplies the exact item distance
        (e.g. point-to-polyline), otherwise the envelope distance is used.
        Items farther than ``max_distance`` are excluded — this implements
        the paper's NearestD semantics when called with ``max_distance=D``.
        """
        self.build()
        if self._root is None or k < 1:
            return []
        # Heap entries: (lower-bound distance, tiebreak, node-or-entry).
        counter = 0
        heap: list[tuple[float, int, object]] = [
            (self._root.envelope.distance_to_point(x, y), counter, self._root)
        ]
        results: list[tuple[T, float]] = []
        while heap and len(results) < k:
            bound, _, payload = heapq.heappop(heap)
            if bound > max_distance:
                break
            if isinstance(payload, RTreeNode):
                self.nodes_visited += 1
                if payload.is_leaf:
                    for item, env in payload.items:
                        if item_distance is not None:
                            dist = item_distance(x, y, item)
                        else:
                            dist = env.distance_to_point(x, y)
                        if dist <= max_distance:
                            counter += 1
                            heapq.heappush(heap, (dist, counter, ("item", item)))
                else:
                    for child in payload.children:
                        counter += 1
                        heapq.heappush(
                            heap,
                            (child.envelope.distance_to_point(x, y), counter, child),
                        )
            else:
                _, item = payload
                results.append((item, bound))
        return results

    def join(
        self, other: "STRtree", expand: float = 0.0
    ) -> list[tuple[T, object]]:
        """Candidate pairs via synchronized dual-tree traversal.

        The classic R-tree join of the spatial-join literature the paper
        surveys ([1], Jacox & Samet): descend both trees simultaneously,
        pruning whole subtree pairs whose node envelopes are disjoint.
        ``expand`` inflates this tree's envelopes (NearestD's radius
        push-down).  Returns (item_a, item_b) pairs whose envelopes
        intersect — the filter phase when *both* sides are indexed.
        """
        self.build()
        other.build()
        if self._root is None or other._root is None:
            return []
        results: list[tuple[T, object]] = []
        stack: list[tuple[RTreeNode, RTreeNode]] = [(self._root, other._root)]
        while stack:
            node_a, node_b = stack.pop()
            self.nodes_visited += 1
            other.nodes_visited += 1
            if not node_a.envelope.expand_by(expand).intersects(node_b.envelope):
                continue
            if node_a.is_leaf and node_b.is_leaf:
                for item_a, env_a in node_a.items:
                    env_a = env_a.expand_by(expand)
                    for item_b, env_b in node_b.items:
                        if env_a.intersects(env_b):
                            results.append((item_a, item_b))
            elif node_a.is_leaf:
                stack.extend((node_a, child) for child in node_b.children)
            elif node_b.is_leaf:
                stack.extend((child, node_b) for child in node_a.children)
            else:
                # Descend the larger-area node (the standard heuristic).
                if node_a.envelope.area >= node_b.envelope.area:
                    stack.extend((child, node_b) for child in node_a.children)
                else:
                    stack.extend((node_a, child) for child in node_b.children)
        return results

    def depth(self) -> int:
        """Height of the tree (0 for an empty tree, 1 for a single leaf)."""
        self.build()
        if self._root is None:
            return 0
        depth = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth
