"""STR-packed static R-tree — the paper's ``STRtree`` filtering index.

Fig 2 of the paper builds a JTS ``STRtree`` over the broadcast right side
and probes it with every left-side envelope; ISP-MC does the same in its
SpatialJoin node.  This implementation uses Sort-Tile-Recursive bulk
loading (Leutenegger et al.) and supports envelope queries, point queries
and nearest-neighbour search with envelope-distance pruning.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Generic, Iterable, Iterator, TypeVar

import numpy as np

from repro.errors import SpatialIndexError
from repro.geometry.envelope import Envelope
from repro.index.morton import morton_codes

__all__ = ["STRtree", "RTreeNode"]

T = TypeVar("T")


class RTreeNode(Generic[T]):
    """A node of the packed R-tree.

    Leaf nodes carry ``items`` (payload, envelope) pairs; interior nodes
    carry ``children``.  Exposed for tests and for the cost model, which
    counts node visits.
    """

    __slots__ = ("envelope", "children", "items", "level")

    def __init__(
        self,
        envelope: Envelope,
        children: list["RTreeNode[T]"] | None = None,
        items: list[tuple[T, Envelope]] | None = None,
        level: int = 0,
    ):
        self.envelope = envelope
        self.children = children
        self.items = items
        self.level = level

    @property
    def is_leaf(self) -> bool:
        return self.items is not None


class STRtree(Generic[T]):
    """Sort-Tile-Recursive bulk-loaded R-tree over (item, envelope) pairs.

    The tree is immutable once built.  ``node_capacity`` defaults to 10,
    matching JTS's STRtree default.  Statistics (`nodes_visited`) accrue
    across queries and feed the cluster cost model; call
    :meth:`reset_stats` between measured phases.
    """

    def __init__(
        self,
        entries: Iterable[tuple[T, Envelope]] = (),
        node_capacity: int = 10,
    ):
        if node_capacity < 2:
            raise SpatialIndexError(f"node_capacity must be >= 2, got {node_capacity}")
        self._node_capacity = node_capacity
        self._entries: list[tuple[T, Envelope]] = [
            (item, env) for item, env in entries if not env.is_empty
        ]
        self._root: RTreeNode[T] | None = None
        self._built = False
        self.nodes_visited = 0
        # Bounds arrays covering a prefix of self._entries, appended by
        # bulk_load_arrays.  When they cover *every* entry, _pack_leaves
        # takes the vectorised sort path instead of attribute-walking
        # envelope objects; any scalar insert() voids the coverage and
        # falls back to the object sort (identical output either way).
        self._bulk_bounds: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._bulk_count = 0

    def insert(self, item: T, envelope: Envelope) -> None:
        """Add an entry; only legal before the first query (STR is static)."""
        if self._built:
            raise SpatialIndexError("STRtree cannot be modified after it has been built")
        if not envelope.is_empty:
            self._entries.append((item, envelope))

    def bulk_load_arrays(self, items, min_x, min_y, max_x, max_y) -> None:
        """Add entries straight from per-item bounds arrays.

        The columnar fast path: sort keys for STR packing come from the
        arrays (one vectorised argsort instead of a Python key-function
        sort), and envelope objects are only materialised once per kept
        entry for the leaf tuples the query kernels expect.  Empty boxes
        (``min_x > max_x``, the ``Envelope.empty()`` sentinel) are skipped
        exactly like :meth:`insert` skips empty envelopes.
        """
        if self._built:
            raise SpatialIndexError("STRtree cannot be modified after it has been built")
        min_x = np.asarray(min_x, dtype=np.float64)
        min_y = np.asarray(min_y, dtype=np.float64)
        max_x = np.asarray(max_x, dtype=np.float64)
        max_y = np.asarray(max_y, dtype=np.float64)
        keep = ~((min_x > max_x) | (min_y > max_y))
        if not keep.all():
            kept = np.flatnonzero(keep)
            items = [items[i] for i in kept.tolist()]
            min_x = min_x[kept]
            min_y = min_y[kept]
            max_x = max_x[kept]
            max_y = max_y[kept]
        append = self._entries.append
        for item, a, b, c, d in zip(
            items, min_x.tolist(), min_y.tolist(), max_x.tolist(), max_y.tolist()
        ):
            append((item, Envelope(a, b, c, d)))
        self._bulk_bounds.append((min_x, min_y, max_x, max_y))
        self._bulk_count += len(min_x)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def root(self) -> RTreeNode[T] | None:
        """The root node (builds the tree on first access); None when empty."""
        self.build()
        return self._root

    def build(self) -> None:
        """Bulk-load the tree (idempotent; also triggered by first query)."""
        if self._built:
            return
        self._built = True
        if not self._entries:
            self._root = None
            return
        leaves = self._pack_leaves()
        level = 1
        nodes = leaves
        while len(nodes) > 1:
            nodes = self._pack_interior(nodes, level)
            level += 1
        self._root = nodes[0]

    def _pack_leaves(self) -> list[RTreeNode[T]]:
        if self._bulk_count == len(self._entries) and self._bulk_count > 0:
            return self._pack_leaves_arrays()
        entries = sorted(
            self._entries, key=lambda entry: (entry[1].min_x + entry[1].max_x)
        )
        slice_count = max(1, math.ceil(math.sqrt(math.ceil(len(entries) / self._node_capacity))))
        slice_size = max(1, math.ceil(len(entries) / slice_count))
        leaves: list[RTreeNode[T]] = []
        for start in range(0, len(entries), slice_size):
            vertical = sorted(
                entries[start : start + slice_size],
                key=lambda entry: (entry[1].min_y + entry[1].max_y),
            )
            for leaf_start in range(0, len(vertical), self._node_capacity):
                chunk = vertical[leaf_start : leaf_start + self._node_capacity]
                envelope = Envelope.empty()
                for _, env in chunk:
                    envelope = envelope.union(env)
                leaves.append(RTreeNode(envelope, items=chunk, level=0))
        return leaves

    def _pack_leaves_arrays(self) -> list[RTreeNode[T]]:
        """Vectorised STR leaf packing over the bulk bounds arrays.

        Identical output to the object path: ``np.argsort(..., kind="stable")``
        on the same float sort keys reproduces ``sorted``'s stable
        permutation, and the leaf envelope min/max equals the union chain.
        """
        entries = self._entries
        if len(self._bulk_bounds) == 1:
            min_x, min_y, max_x, max_y = self._bulk_bounds[0]
        else:
            min_x = np.concatenate([b[0] for b in self._bulk_bounds])
            min_y = np.concatenate([b[1] for b in self._bulk_bounds])
            max_x = np.concatenate([b[2] for b in self._bulk_bounds])
            max_y = np.concatenate([b[3] for b in self._bulk_bounds])
        order = np.argsort(min_x + max_x, kind="stable")
        ky = min_y + max_y
        slice_count = max(1, math.ceil(math.sqrt(math.ceil(len(entries) / self._node_capacity))))
        slice_size = max(1, math.ceil(len(entries) / slice_count))
        leaves: list[RTreeNode[T]] = []
        for start in range(0, len(entries), slice_size):
            horizontal = order[start : start + slice_size]
            vertical = horizontal[np.argsort(ky[horizontal], kind="stable")]
            for leaf_start in range(0, len(vertical), self._node_capacity):
                idx = vertical[leaf_start : leaf_start + self._node_capacity]
                envelope = Envelope(
                    float(min_x[idx].min()),
                    float(min_y[idx].min()),
                    float(max_x[idx].max()),
                    float(max_y[idx].max()),
                )
                chunk = [entries[i] for i in idx.tolist()]
                leaves.append(RTreeNode(envelope, items=chunk, level=0))
        return leaves

    def _pack_interior(
        self, nodes: list[RTreeNode[T]], level: int
    ) -> list[RTreeNode[T]]:
        nodes = sorted(nodes, key=lambda n: (n.envelope.min_x + n.envelope.max_x))
        slice_count = max(1, math.ceil(math.sqrt(math.ceil(len(nodes) / self._node_capacity))))
        slice_size = max(1, math.ceil(len(nodes) / slice_count))
        parents: list[RTreeNode[T]] = []
        for start in range(0, len(nodes), slice_size):
            vertical = sorted(
                nodes[start : start + slice_size],
                key=lambda n: (n.envelope.min_y + n.envelope.max_y),
            )
            for group_start in range(0, len(vertical), self._node_capacity):
                chunk = vertical[group_start : group_start + self._node_capacity]
                envelope = Envelope.empty()
                for child in chunk:
                    envelope = envelope.union(child.envelope)
                parents.append(RTreeNode(envelope, children=chunk, level=level))
        return parents

    def reset_stats(self) -> None:
        """Zero the node-visit counter."""
        self.nodes_visited = 0

    def query(self, envelope: Envelope) -> list[T]:
        """Return items whose envelopes intersect the query envelope."""
        return [item for item, _ in self.query_entries(envelope)]

    def query_entries(self, envelope: Envelope) -> list[tuple[T, Envelope]]:
        """Like :meth:`query` but returning (item, envelope) pairs."""
        self.build()
        results: list[tuple[T, Envelope]] = []
        if self._root is None or envelope.is_empty:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_visited += 1
            if not node.envelope.intersects(envelope):
                continue
            if node.is_leaf:
                for item, item_env in node.items:
                    if item_env.intersects(envelope):
                        results.append((item, item_env))
            else:
                stack.extend(node.children)
        return results

    def query_point(self, x: float, y: float) -> list[T]:
        """Return items whose envelopes contain the point."""
        return self.query(Envelope.of_point(x, y))

    def query_batch(
        self, envelopes: Iterable[Envelope], with_visits: bool = False
    ) -> list[list[T]] | tuple[list[list[T]], np.ndarray]:
        """Bulk :meth:`query`: one traversal answers every probe envelope.

        Probes are sorted by the Morton code of their envelope centres so
        probes descending the same subtrees stay adjacent, and the tree is
        walked once with a (node, probe-subset) stack.  Per-probe candidate
        *order* and per-probe visit counts are identical to running
        :meth:`query` once per envelope; ``nodes_visited`` advances by the
        same total.  With ``with_visits`` the per-probe visit counts are
        returned alongside the candidate lists.
        """
        envelopes = list(envelopes)
        empty = np.fromiter(
            (env.is_empty for env in envelopes), dtype=bool, count=len(envelopes)
        )
        pmin_x = np.fromiter((env.min_x for env in envelopes), dtype=np.float64)
        pmin_y = np.fromiter((env.min_y for env in envelopes), dtype=np.float64)
        pmax_x = np.fromiter((env.max_x for env in envelopes), dtype=np.float64)
        pmax_y = np.fromiter((env.max_y for env in envelopes), dtype=np.float64)
        return self._query_batch_arrays(
            pmin_x, pmin_y, pmax_x, pmax_y, empty, with_visits
        )

    def query_batch_points(
        self, xs, ys, with_visits: bool = False
    ) -> list[list[T]] | tuple[list[list[T]], np.ndarray]:
        """Bulk point-envelope queries straight from coordinate arrays.

        Equivalent to ``query_batch([Envelope.of_point(x, y) ...])`` without
        materialising the envelope objects — the shape every point-probe
        join uses.
        """
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        empty = np.zeros(len(xs), dtype=bool)
        return self._query_batch_arrays(xs, ys, xs, ys, empty, with_visits)

    def query_batch_points_chunks(
        self, xs, ys
    ) -> tuple[list[tuple[T, np.ndarray]], np.ndarray]:
        """Bulk point queries returning per-item probe chunks.

        Every tree node is pushed exactly once, so each build item
        surfaces in at most one ``(item, probe_indices)`` chunk — the
        chunk holds *all* probes whose point hits the item's envelope,
        which makes it exactly the group a batched refinement kernel
        wants, with no per-pair regrouping.  Chunks arrive in DFS pop
        order; stably sorting the flattened pairs by probe therefore
        reproduces :meth:`query`'s per-probe candidate order.  Per-probe
        ``visits`` and ``nodes_visited`` accrue identically to one
        :meth:`query` per point.
        """
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        self.build()
        n = len(xs)
        visits = np.zeros(n, dtype=np.int64)
        chunks: list[tuple[T, np.ndarray]] = []
        if self._root is None or n == 0:
            return chunks, visits
        root_env = self._root.envelope
        codes = morton_codes(
            xs, ys, root_env.min_x, root_env.min_y, root_env.width, root_env.height
        )
        order = np.argsort(codes, kind="stable")
        stack: list[tuple[RTreeNode[T], np.ndarray]] = [(self._root, order)]
        while stack:
            node, idx = stack.pop()
            visits[idx] += 1
            env = node.envelope
            px = xs[idx]
            py = ys[idx]
            mask = (
                (env.min_x <= px)
                & (px <= env.max_x)
                & (env.min_y <= py)
                & (py <= env.max_y)
            )
            alive = idx[mask]
            if alive.size == 0:
                continue
            if node.is_leaf:
                ax = xs[alive]
                ay = ys[alive]
                for item, item_env in node.items:
                    hits = (
                        (item_env.min_x <= ax)
                        & (ax <= item_env.max_x)
                        & (item_env.min_y <= ay)
                        & (ay <= item_env.max_y)
                    )
                    if hits.any():
                        chunks.append((item, alive[hits]))
            else:
                stack.extend((child, alive) for child in node.children)
        self.nodes_visited += int(visits.sum())
        return chunks, visits

    def _query_batch_arrays(
        self,
        pmin_x: np.ndarray,
        pmin_y: np.ndarray,
        pmax_x: np.ndarray,
        pmax_y: np.ndarray,
        empty: np.ndarray,
        with_visits: bool,
    ):
        self.build()
        n = len(pmin_x)
        results: list[list[T]] = [[] for _ in range(n)]
        visits = np.zeros(n, dtype=np.int64)
        live = np.flatnonzero(~empty)
        if self._root is None or live.size == 0:
            return (results, visits) if with_visits else results
        root_env = self._root.envelope
        codes = morton_codes(
            (pmin_x[live] + pmax_x[live]) / 2.0,
            (pmin_y[live] + pmax_y[live]) / 2.0,
            root_env.min_x,
            root_env.min_y,
            root_env.width,
            root_env.height,
        )
        order = live[np.argsort(codes, kind="stable")]
        stack: list[tuple[RTreeNode[T], np.ndarray]] = [(self._root, order)]
        while stack:
            node, idx = stack.pop()
            visits[idx] += 1
            env = node.envelope
            mask = (
                (env.min_x <= pmax_x[idx])
                & (pmin_x[idx] <= env.max_x)
                & (env.min_y <= pmax_y[idx])
                & (pmin_y[idx] <= env.max_y)
            )
            alive = idx[mask]
            if alive.size == 0:
                continue
            if node.is_leaf:
                ax0 = pmin_x[alive]
                ay0 = pmin_y[alive]
                ax1 = pmax_x[alive]
                ay1 = pmax_y[alive]
                for item, item_env in node.items:
                    hits = (
                        (item_env.min_x <= ax1)
                        & (ax0 <= item_env.max_x)
                        & (item_env.min_y <= ay1)
                        & (ay0 <= item_env.max_y)
                    )
                    for probe in alive[hits].tolist():
                        results[probe].append(item)
            else:
                stack.extend((child, alive) for child in node.children)
        self.nodes_visited += int(visits.sum())
        return (results, visits) if with_visits else results

    def iter_all(self) -> Iterator[tuple[T, Envelope]]:
        """Iterate over every stored entry (build not required)."""
        return iter(self._entries)

    def nearest(
        self,
        x: float,
        y: float,
        k: int = 1,
        max_distance: float = math.inf,
        item_distance: Callable[[float, float, T], float] | None = None,
    ) -> list[tuple[T, float]]:
        """Return up to ``k`` nearest items with their distances.

        Traversal is best-first over envelope distance; when
        ``item_distance`` is given it supplies the exact item distance
        (e.g. point-to-polyline), otherwise the envelope distance is used.
        Items farther than ``max_distance`` are excluded — this implements
        the paper's NearestD semantics when called with ``max_distance=D``.
        """
        self.build()
        if self._root is None or k < 1:
            return []
        # Heap entries: (lower-bound distance, tiebreak, node-or-entry).
        counter = 0
        heap: list[tuple[float, int, object]] = [
            (self._root.envelope.distance_to_point(x, y), counter, self._root)
        ]
        results: list[tuple[T, float]] = []
        while heap and len(results) < k:
            bound, _, payload = heapq.heappop(heap)
            if bound > max_distance:
                break
            if isinstance(payload, RTreeNode):
                self.nodes_visited += 1
                if payload.is_leaf:
                    for item, env in payload.items:
                        if item_distance is not None:
                            dist = item_distance(x, y, item)
                        else:
                            dist = env.distance_to_point(x, y)
                        if dist <= max_distance:
                            counter += 1
                            heapq.heappush(heap, (dist, counter, ("item", item)))
                else:
                    for child in payload.children:
                        counter += 1
                        heapq.heappush(
                            heap,
                            (child.envelope.distance_to_point(x, y), counter, child),
                        )
            else:
                _, item = payload
                results.append((item, bound))
        return results

    def join(
        self, other: "STRtree", expand: float = 0.0
    ) -> list[tuple[T, object]]:
        """Candidate pairs via synchronized dual-tree traversal.

        The classic R-tree join of the spatial-join literature the paper
        surveys ([1], Jacox & Samet): descend both trees simultaneously,
        pruning whole subtree pairs whose node envelopes are disjoint.
        ``expand`` inflates this tree's envelopes (NearestD's radius
        push-down).  Returns (item_a, item_b) pairs whose envelopes
        intersect — the filter phase when *both* sides are indexed.
        """
        self.build()
        other.build()
        if self._root is None or other._root is None:
            return []
        results: list[tuple[T, object]] = []
        stack: list[tuple[RTreeNode, RTreeNode]] = [(self._root, other._root)]
        while stack:
            node_a, node_b = stack.pop()
            self.nodes_visited += 1
            other.nodes_visited += 1
            if not node_a.envelope.expand_by(expand).intersects(node_b.envelope):
                continue
            if node_a.is_leaf and node_b.is_leaf:
                for item_a, env_a in node_a.items:
                    env_a = env_a.expand_by(expand)
                    for item_b, env_b in node_b.items:
                        if env_a.intersects(env_b):
                            results.append((item_a, item_b))
            elif node_a.is_leaf:
                stack.extend((node_a, child) for child in node_b.children)
            elif node_b.is_leaf:
                stack.extend((child, node_b) for child in node_a.children)
            else:
                # Descend the larger-area node (the standard heuristic).
                if node_a.envelope.area >= node_b.envelope.area:
                    stack.extend((child, node_b) for child in node_a.children)
                else:
                    stack.extend((node_a, child) for child in node_b.children)
        return results

    def depth(self) -> int:
        """Height of the tree (0 for an empty tree, 1 for a single leaf)."""
        self.build()
        if self._root is None:
            return 0
        depth = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth
