"""Spatial partitioners for partitioned (non-broadcast) joins.

SpatialHadoop and HadoopGIS both *spatially partition* the joined datasets
(Section II of the paper); SpatialSpark supports the same strategy as an
alternative to broadcast joins when the right side is too large for one
node's memory.  A partitioner derives a set of tile envelopes from a
sample, after which both sides are routed to every tile their envelope
overlaps and joined tile-by-tile (with duplicate suppression by the
reference-point rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SpatialIndexError
from repro.geometry.envelope import Envelope

__all__ = [
    "SpatialPartitioning",
    "FixedGridPartitioner",
    "BinarySplitPartitioner",
    "SortTilePartitioner",
    "reference_point_in",
]


@dataclass(frozen=True)
class SpatialPartitioning:
    """A set of tile envelopes covering the data extent.

    ``tiles[i]`` is the envelope of partition ``i``.  Tiles may overlap
    data envelopes arbitrarily; router semantics are *multi-assignment*
    (an object goes to every tile it intersects) with downstream duplicate
    suppression via :func:`reference_point_in`.
    """

    extent: Envelope
    tiles: tuple[Envelope, ...]

    def __len__(self) -> int:
        return len(self.tiles)

    def route(self, envelope: Envelope) -> list[int]:
        """Return indices of every tile the envelope intersects.

        Objects falling outside all tiles (possible when the partitioning
        was derived from a sample) are routed to the nearest tile so no
        data is lost.
        """
        if envelope.is_empty:
            return []
        hits = [i for i, tile in enumerate(self.tiles) if tile.intersects(envelope)]
        if hits:
            return hits
        nearest = min(
            range(len(self.tiles)), key=lambda i: self.tiles[i].distance(envelope)
        )
        return [nearest]

    def route_point(self, x: float, y: float) -> int:
        """Return the single tile owning a point (ties to lowest index)."""
        for i, tile in enumerate(self.tiles):
            if tile.contains_point(x, y):
                return i
        return min(
            range(len(self.tiles)),
            key=lambda i: self.tiles[i].distance_to_point(x, y),
        )


def reference_point_in(pair_envelope: Envelope, tile: Envelope) -> bool:
    """Duplicate-suppression test for multi-assignment joins.

    When both sides of a pair were replicated to several tiles the pair is
    produced in each, so only the tile containing the pair's *reference
    point* (the envelope-intersection's lower-left corner) reports it.
    """
    if pair_envelope.is_empty or tile.is_empty:
        return False
    return tile.contains_point(pair_envelope.min_x, pair_envelope.min_y)


class FixedGridPartitioner:
    """Partition the extent into a uniform ``nx`` x ``ny`` grid of tiles."""

    def __init__(self, nx: int, ny: int):
        if nx < 1 or ny < 1:
            raise SpatialIndexError(f"grid partitioner needs >= 1 tile per axis, got {nx}x{ny}")
        self.nx = nx
        self.ny = ny

    def partition(
        self, extent: Envelope, sample: Sequence[tuple[float, float]] = ()
    ) -> SpatialPartitioning:
        """Create the grid tiles (the sample is ignored for a fixed grid)."""
        if extent.is_empty:
            raise SpatialIndexError("cannot partition an empty extent")
        tiles = []
        width = extent.width / self.nx
        height = extent.height / self.ny
        for row in range(self.ny):
            for col in range(self.nx):
                tiles.append(
                    Envelope(
                        extent.min_x + col * width,
                        extent.min_y + row * height,
                        extent.min_x + (col + 1) * width,
                        extent.min_y + (row + 1) * height,
                    )
                )
        return SpatialPartitioning(extent, tuple(tiles))


class BinarySplitPartitioner:
    """Recursive median splits (a KD/BSP decomposition) from a point sample.

    Produces ``2**levels`` tiles with approximately equal sample counts,
    which equalises per-tile work for skewed data (Manhattan taxi density
    vs outer boroughs).
    """

    def __init__(self, levels: int):
        if levels < 0:
            raise SpatialIndexError(f"levels must be >= 0, got {levels}")
        self.levels = levels

    def partition(
        self, extent: Envelope, sample: Sequence[tuple[float, float]]
    ) -> SpatialPartitioning:
        """Split the extent on alternating-axis sample medians."""
        if extent.is_empty:
            raise SpatialIndexError("cannot partition an empty extent")
        tiles: list[Envelope] = []
        self._split(extent, list(sample), self.levels, True, tiles)
        return SpatialPartitioning(extent, tuple(tiles))

    def _split(
        self,
        extent: Envelope,
        points: list[tuple[float, float]],
        levels: int,
        vertical: bool,
        out: list[Envelope],
    ) -> None:
        if levels == 0 or len(points) < 2:
            out.append(extent)
            return
        axis = 0 if vertical else 1
        points.sort(key=lambda p: p[axis])
        median = points[len(points) // 2][axis]
        if vertical:
            if not (extent.min_x < median < extent.max_x):
                median = (extent.min_x + extent.max_x) / 2.0
            left = Envelope(extent.min_x, extent.min_y, median, extent.max_y)
            right = Envelope(median, extent.min_y, extent.max_x, extent.max_y)
            low = [p for p in points if p[0] <= median]
            high = [p for p in points if p[0] > median]
        else:
            if not (extent.min_y < median < extent.max_y):
                median = (extent.min_y + extent.max_y) / 2.0
            left = Envelope(extent.min_x, extent.min_y, extent.max_x, median)
            right = Envelope(extent.min_x, median, extent.max_x, extent.max_y)
            low = [p for p in points if p[1] <= median]
            high = [p for p in points if p[1] > median]
        self._split(left, low, levels - 1, not vertical, out)
        self._split(right, high, levels - 1, not vertical, out)


class SortTilePartitioner:
    """Sort-Tile-Recursive tiling from a point sample (STR packing).

    Mirrors the leaf-packing step of the STR bulk load: the sample is cut
    into vertical slices by x, each slice into tiles by y, yielding about
    ``target_tiles`` tiles with near-equal sample counts.  Tiles are then
    expanded to cover the full extent so routing never misses.
    """

    def __init__(self, target_tiles: int):
        if target_tiles < 1:
            raise SpatialIndexError(f"target_tiles must be >= 1, got {target_tiles}")
        self.target_tiles = target_tiles

    def partition(
        self, extent: Envelope, sample: Sequence[tuple[float, float]]
    ) -> SpatialPartitioning:
        """Derive ~target_tiles tiles from the sample."""
        if extent.is_empty:
            raise SpatialIndexError("cannot partition an empty extent")
        points = sorted(sample)
        if not points or self.target_tiles == 1:
            return SpatialPartitioning(extent, (extent,))
        slices = max(1, round(math.sqrt(self.target_tiles)))
        per_slice = max(1, math.ceil(self.target_tiles / slices))
        slice_size = max(1, math.ceil(len(points) / slices))
        tiles: list[Envelope] = []
        x_cursor = extent.min_x
        for s in range(slices):
            chunk = points[s * slice_size : (s + 1) * slice_size]
            if not chunk:
                break
            next_start = (s + 1) * slice_size
            if next_start < len(points):
                x_hi = max(points[next_start][0], x_cursor)
            else:
                x_hi = extent.max_x
            rows = sorted(chunk, key=lambda p: p[1])
            row_size = max(1, math.ceil(len(rows) / per_slice))
            y_cursor = extent.min_y
            for r in range(per_slice):
                next_row_start = (r + 1) * row_size
                is_last = r == per_slice - 1 or next_row_start >= len(rows)
                if is_last:
                    y_hi = extent.max_y
                else:
                    y_hi = max(rows[next_row_start][1], y_cursor)
                tile = Envelope(x_cursor, y_cursor, x_hi, y_hi)
                if tile.width > 0 and tile.height > 0:
                    tiles.append(tile)
                y_cursor = y_hi
                if is_last:
                    break
            x_cursor = x_hi
        if not tiles:
            tiles = [extent]
        return SpatialPartitioning(extent, tuple(tiles))
