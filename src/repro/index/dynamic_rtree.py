"""Insertion-based dynamic R-tree with quadratic split (Guttman).

The STR tree (:mod:`repro.index.rtree`) is bulk-loaded and immutable —
ideal for broadcast joins where the right side is known up front.  Some
workflows (streaming partitioner statistics, incremental index tests)
need insert-as-you-go; this class provides the classic Guttman R-tree
with quadratic split for them.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.errors import SpatialIndexError
from repro.geometry.envelope import Envelope

__all__ = ["RTree"]

T = TypeVar("T")


class _Node(Generic[T]):
    __slots__ = ("envelope", "children", "entries", "parent")

    def __init__(self, leaf: bool):
        self.envelope = Envelope.empty()
        self.children: list["_Node[T]"] | None = None if leaf else []
        self.entries: list[tuple[T, Envelope]] | None = [] if leaf else None
        self.parent: "_Node[T] | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None

    def fanout(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)

    def recompute_envelope(self) -> None:
        envelope = Envelope.empty()
        if self.is_leaf:
            for _, env in self.entries:
                envelope = envelope.union(env)
        else:
            for child in self.children:
                envelope = envelope.union(child.envelope)
        self.envelope = envelope


class RTree(Generic[T]):
    """A dynamic R-tree supporting insert, delete and envelope queries."""

    def __init__(self, max_entries: int = 8):
        if max_entries < 4:
            raise SpatialIndexError(f"max_entries must be >= 4, got {max_entries}")
        self._max = max_entries
        self._min = max(2, max_entries // 2)
        self._root: _Node[T] = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, item: T, envelope: Envelope) -> None:
        """Insert an item; empty envelopes are rejected."""
        if envelope.is_empty:
            raise SpatialIndexError("cannot insert an empty envelope")
        leaf = self._choose_leaf(self._root, envelope)
        leaf.entries.append((item, envelope))
        leaf.envelope = leaf.envelope.union(envelope)
        self._size += 1
        if leaf.fanout() > self._max:
            self._split(leaf)
        else:
            self._propagate_envelope(leaf.parent, envelope)

    def _propagate_envelope(self, node: _Node[T] | None, envelope: Envelope) -> None:
        while node is not None:
            node.envelope = node.envelope.union(envelope)
            node = node.parent

    def _choose_leaf(self, node: _Node[T], envelope: Envelope) -> _Node[T]:
        while not node.is_leaf:
            best = None
            best_growth = float("inf")
            best_area = float("inf")
            for child in node.children:
                grown = child.envelope.union(envelope)
                growth = grown.area - child.envelope.area
                if growth < best_growth or (
                    growth == best_growth and child.envelope.area < best_area
                ):
                    best = child
                    best_growth = growth
                    best_area = child.envelope.area
            node = best
        return node

    def _split(self, node: _Node[T]) -> None:
        # Gather the node's members as (payload, envelope) pairs.
        if node.is_leaf:
            members: list[tuple[object, Envelope]] = list(node.entries)
        else:
            members = [(child, child.envelope) for child in node.children]
        seed_a, seed_b = self._pick_seeds(members)
        group_a = [members[seed_a]]
        group_b = [members[seed_b]]
        env_a = members[seed_a][1]
        env_b = members[seed_b][1]
        rest = [m for i, m in enumerate(members) if i not in (seed_a, seed_b)]
        while rest:
            # Must a group take everything to reach the minimum fill?
            if len(group_a) + len(rest) == self._min:
                group_a.extend(rest)
                for _, env in rest:
                    env_a = env_a.union(env)
                rest = []
                break
            if len(group_b) + len(rest) == self._min:
                group_b.extend(rest)
                for _, env in rest:
                    env_b = env_b.union(env)
                rest = []
                break
            # Quadratic: pick the member with the greatest preference.
            best_idx = 0
            best_diff = -1.0
            for i, (_, env) in enumerate(rest):
                d_a = env_a.union(env).area - env_a.area
                d_b = env_b.union(env).area - env_b.area
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff = diff
                    best_idx = i
            member = rest.pop(best_idx)
            d_a = env_a.union(member[1]).area - env_a.area
            d_b = env_b.union(member[1]).area - env_b.area
            if d_a < d_b or (d_a == d_b and len(group_a) <= len(group_b)):
                group_a.append(member)
                env_a = env_a.union(member[1])
            else:
                group_b.append(member)
                env_b = env_b.union(member[1])
        sibling = _Node(leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = [m for m in group_a]
            sibling.entries = [m for m in group_b]
        else:
            node.children = [m[0] for m in group_a]
            sibling.children = [m[0] for m in group_b]
            for child in sibling.children:
                child.parent = sibling
            for child in node.children:
                child.parent = node
        node.recompute_envelope()
        sibling.recompute_envelope()
        parent = node.parent
        if parent is None:
            new_root = _Node(leaf=False)
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            new_root.recompute_envelope()
            self._root = new_root
            return
        parent.children.append(sibling)
        sibling.parent = parent
        parent.recompute_envelope()
        if parent.fanout() > self._max:
            self._split(parent)
        else:
            node = parent.parent
            while node is not None:
                node.recompute_envelope()
                node = node.parent

    def _pick_seeds(self, members: list[tuple[object, Envelope]]) -> tuple[int, int]:
        worst = -1.0
        seeds = (0, 1)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                combined = members[i][1].union(members[j][1])
                waste = combined.area - members[i][1].area - members[j][1].area
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        return seeds

    def query(self, envelope: Envelope) -> list[T]:
        """Return items whose envelopes intersect the query envelope."""
        results: list[T] = []
        if envelope.is_empty:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.envelope.intersects(envelope):
                continue
            if node.is_leaf:
                results.extend(
                    item for item, env in node.entries if env.intersects(envelope)
                )
            else:
                stack.extend(node.children)
        return results

    def delete(self, item: T, envelope: Envelope) -> bool:
        """Remove one matching entry; returns True when found.

        Underfull nodes are handled by re-inserting orphaned entries
        (the condense step of Guttman's algorithm).
        """
        target = self._find_leaf(self._root, item, envelope)
        if target is None:
            return False
        target.entries = [
            (stored, env)
            for stored, env in target.entries
            if not (stored == item and env == envelope)
        ]
        self._size -= 1
        orphans: list[tuple[T, Envelope]] = []
        node = target
        while node.parent is not None:
            parent = node.parent
            if node.fanout() < self._min:
                parent.children.remove(node)
                orphans.extend(self._collect_entries(node))
            else:
                node.recompute_envelope()
            parent.recompute_envelope()
            node = parent
        if not self._root.is_leaf and self._root.fanout() == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        self._size -= len(orphans)
        for orphan_item, orphan_env in orphans:
            self.insert(orphan_item, orphan_env)
        return True

    def _collect_entries(self, node: _Node[T]) -> list[tuple[T, Envelope]]:
        if node.is_leaf:
            return list(node.entries)
        collected: list[tuple[T, Envelope]] = []
        for child in node.children:
            collected.extend(self._collect_entries(child))
        return collected

    def _find_leaf(
        self, node: _Node[T], item: T, envelope: Envelope
    ) -> _Node[T] | None:
        if not node.envelope.intersects(envelope):
            return None
        if node.is_leaf:
            for stored, env in node.entries:
                if stored == item and env == envelope:
                    return node
            return None
        for child in node.children:
            found = self._find_leaf(child, item, envelope)
            if found is not None:
                return found
        return None

    def iter_all(self) -> Iterator[tuple[T, Envelope]]:
        """Yield every (item, envelope) entry in the tree."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)
