"""Spatial indexing substrate: R-trees, grid, quadtree, partitioners."""

from repro.index.morton import morton_code, morton_codes
from repro.index.rtree import STRtree, RTreeNode
from repro.index.dynamic_rtree import RTree
from repro.index.grid import GridIndex
from repro.index.quadtree import QuadTree
from repro.index.partitioner import (
    BinarySplitPartitioner,
    FixedGridPartitioner,
    SortTilePartitioner,
    SpatialPartitioning,
    reference_point_in,
)

__all__ = [
    "STRtree",
    "morton_code",
    "morton_codes",
    "RTreeNode",
    "RTree",
    "GridIndex",
    "QuadTree",
    "SpatialPartitioning",
    "FixedGridPartitioner",
    "BinarySplitPartitioner",
    "SortTilePartitioner",
    "reference_point_in",
]
