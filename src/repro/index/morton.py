"""Morton (Z-order) codes over 16-bit normalised coordinates.

The HDFS writers lay datasets out in Morton order (see
``repro.bench.workloads``), and the batch R-tree probe sorts its probe
points the same way: consecutive probes then descend largely the same
subtrees, which keeps the per-node probe subsets dense — the traversal-
locality trick ISP-MC gets for free from its spatially-sorted scan ranges.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morton_code", "morton_codes"]


def morton_code(x: float, y: float, extent) -> int:
    """Interleave 16-bit normalised coordinates into a Morton (Z) code."""
    nx = int(65535 * (x - extent.min_x) / max(extent.width, 1e-300))
    ny = int(65535 * (y - extent.min_y) / max(extent.height, 1e-300))
    nx = min(max(nx, 0), 65535)
    ny = min(max(ny, 0), 65535)
    return int(_spread_bits(np.uint64(nx)) | (_spread_bits(np.uint64(ny)) << np.uint64(1)))


def _spread_bits(v):
    """Spread the low 16 bits of ``v`` into the even bit positions."""
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x33333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x55555555)
    return v


def morton_codes(
    xs: np.ndarray,
    ys: np.ndarray,
    min_x: float,
    min_y: float,
    width: float,
    height: float,
) -> np.ndarray:
    """Vectorised Morton codes for coordinate arrays.

    Same normalisation as :func:`morton_code`: coordinates map onto a
    65536x65536 grid over the given extent, clamped at the borders.
    """
    nx = np.clip(
        (65535 * (np.asarray(xs, dtype=np.float64) - min_x) / max(width, 1e-300))
        .astype(np.int64),
        0,
        65535,
    ).astype(np.uint64)
    ny = np.clip(
        (65535 * (np.asarray(ys, dtype=np.float64) - min_y) / max(height, 1e-300))
        .astype(np.int64),
        0,
        65535,
    ).astype(np.uint64)
    return _spread_bits(nx) | (_spread_bits(ny) << np.uint64(1))
