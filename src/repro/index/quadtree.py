"""Point-region quadtree.

Used by the sampling-based partitioners to derive balanced spatial splits
from a point sample, and available as an alternative point index.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.errors import SpatialIndexError
from repro.geometry.envelope import Envelope

__all__ = ["QuadTree"]

T = TypeVar("T")


class _QuadNode(Generic[T]):
    __slots__ = ("extent", "points", "children", "depth")

    def __init__(self, extent: Envelope, depth: int):
        self.extent = extent
        self.points: list[tuple[float, float, T]] | None = []
        self.children: list["_QuadNode[T]"] | None = None
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.points is not None


class QuadTree(Generic[T]):
    """A PR quadtree over points with a leaf capacity and max depth.

    Points exactly on split lines go to the lower/left quadrant, keeping
    the decomposition deterministic.
    """

    def __init__(self, extent: Envelope, capacity: int = 32, max_depth: int = 16):
        if extent.is_empty:
            raise SpatialIndexError("quadtree extent may not be empty")
        if capacity < 1:
            raise SpatialIndexError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._max_depth = max_depth
        self._root: _QuadNode[T] = _QuadNode(extent, 0)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, x: float, y: float, item: T) -> None:
        """Insert a point; raises when outside the tree extent."""
        if not self._root.extent.contains_point(x, y):
            raise SpatialIndexError(f"point ({x}, {y}) lies outside the quadtree extent")
        node = self._root
        while not node.is_leaf:
            node = self._child_for(node, x, y)
        node.points.append((x, y, item))
        self._size += 1
        if len(node.points) > self._capacity and node.depth < self._max_depth:
            self._subdivide(node)

    def _child_for(self, node: _QuadNode[T], x: float, y: float) -> _QuadNode[T]:
        cx, cy = node.extent.center
        index = (1 if x > cx else 0) | (2 if y > cy else 0)
        return node.children[index]

    def _subdivide(self, node: _QuadNode[T]) -> None:
        extent = node.extent
        cx, cy = extent.center
        quadrants = [
            Envelope(extent.min_x, extent.min_y, cx, cy),
            Envelope(cx, extent.min_y, extent.max_x, cy),
            Envelope(extent.min_x, cy, cx, extent.max_y),
            Envelope(cx, cy, extent.max_x, extent.max_y),
        ]
        node.children = [_QuadNode(q, node.depth + 1) for q in quadrants]
        points = node.points
        node.points = None
        for x, y, item in points:
            child = self._child_for(node, x, y)
            child.points.append((x, y, item))
        # A pathological all-identical-point leaf can still exceed capacity;
        # children deeper than max_depth simply hold oversized leaves.
        for child in node.children:
            if len(child.points) > self._capacity and child.depth < self._max_depth:
                self._subdivide(child)

    def query(self, envelope: Envelope) -> list[T]:
        """Return items at points inside the query envelope."""
        results: list[T] = []
        if envelope.is_empty:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.extent.intersects(envelope):
                continue
            if node.is_leaf:
                results.extend(
                    item
                    for x, y, item in node.points
                    if envelope.contains_point(x, y)
                )
            else:
                stack.extend(node.children)
        return results

    def leaf_extents(self) -> Iterator[tuple[Envelope, int]]:
        """Yield (extent, point-count) for every leaf — partitioner input."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield (node.extent, len(node.points))
            else:
                stack.extend(node.children)

    def depth(self) -> int:
        """Maximum leaf depth currently present."""
        best = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                stack.extend(node.children)
        return best
