"""Uniform grid index.

A simple alternative to the R-tree for the filtering phase; HadoopGIS-style
systems partition space into fixed tiles, and the grid index is also what
the spatial partitioners use to estimate density histograms.
"""

from __future__ import annotations

import math
from typing import Generic, Iterable, Iterator, TypeVar

from repro.errors import SpatialIndexError
from repro.geometry.envelope import Envelope

__all__ = ["GridIndex"]

T = TypeVar("T")


class GridIndex(Generic[T]):
    """A uniform ``nx`` x ``ny`` grid over a fixed extent.

    Items are registered in every cell their envelope overlaps, so queries
    must deduplicate (done here via id-based seen sets).  Cell lists keep
    (item, envelope) pairs for exact envelope filtering at query time.
    """

    def __init__(self, extent: Envelope, nx: int, ny: int):
        if extent.is_empty:
            raise SpatialIndexError("grid extent may not be empty")
        if nx < 1 or ny < 1:
            raise SpatialIndexError(f"grid must have >= 1 cell per axis, got {nx}x{ny}")
        self.extent = extent
        self.nx = nx
        self.ny = ny
        self._cell_w = extent.width / nx if extent.width > 0 else 1.0
        self._cell_h = extent.height / ny if extent.height > 0 else 1.0
        self._cells: dict[tuple[int, int], list[tuple[T, Envelope]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _clamp_x(self, col: int) -> int:
        return min(max(col, 0), self.nx - 1)

    def _clamp_y(self, row: int) -> int:
        return min(max(row, 0), self.ny - 1)

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Return the (col, row) cell containing the point (clamped)."""
        col = self._clamp_x(int((x - self.extent.min_x) / self._cell_w))
        row = self._clamp_y(int((y - self.extent.min_y) / self._cell_h))
        return col, row

    def cells_overlapping(self, envelope: Envelope) -> Iterator[tuple[int, int]]:
        """Yield every cell the envelope overlaps (clamped to the grid)."""
        if envelope.is_empty:
            return
        col_lo = self._clamp_x(int((envelope.min_x - self.extent.min_x) / self._cell_w))
        col_hi = self._clamp_x(
            int(math.floor((envelope.max_x - self.extent.min_x) / self._cell_w))
        )
        row_lo = self._clamp_y(int((envelope.min_y - self.extent.min_y) / self._cell_h))
        row_hi = self._clamp_y(
            int(math.floor((envelope.max_y - self.extent.min_y) / self._cell_h))
        )
        for col in range(col_lo, col_hi + 1):
            for row in range(row_lo, row_hi + 1):
                yield (col, row)

    def insert(self, item: T, envelope: Envelope) -> None:
        """Register an item in every overlapping cell."""
        if envelope.is_empty:
            raise SpatialIndexError("cannot insert an empty envelope")
        for cell in self.cells_overlapping(envelope):
            self._cells.setdefault(cell, []).append((item, envelope))
        self._size += 1

    def extend(self, entries: Iterable[tuple[T, Envelope]]) -> None:
        """Insert many (item, envelope) pairs."""
        for item, envelope in entries:
            self.insert(item, envelope)

    def query(self, envelope: Envelope) -> list[T]:
        """Return distinct items whose envelopes intersect the query."""
        seen: set[int] = set()
        results: list[T] = []
        for cell in self.cells_overlapping(envelope):
            for item, item_env in self._cells.get(cell, ()):
                if id(item) in seen:
                    continue
                if item_env.intersects(envelope):
                    seen.add(id(item))
                    results.append(item)
        return results

    def query_point(self, x: float, y: float) -> list[T]:
        """Return items whose envelopes contain the point."""
        cell = self.cell_of(x, y)
        return [
            item
            for item, env in self._cells.get(cell, ())
            if env.contains_point(x, y)
        ]

    def cell_counts(self) -> dict[tuple[int, int], int]:
        """Histogram of entries per occupied cell (partitioners use this)."""
        return {cell: len(entries) for cell, entries in self._cells.items()}
