"""Query AST produced by the SQL parser.

Expression nodes carry enough structure for the planner to classify WHERE
conjuncts into spatial-join predicates (``ST_WITHIN``/``ST_NEARESTD`` over
columns of both join sides, per Fig 1) versus per-table filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr",
    "ColumnRef",
    "Literal",
    "Star",
    "FunctionCall",
    "BinaryOp",
    "UnaryOp",
    "SelectItem",
    "TableRef",
    "JoinClause",
    "OrderItem",
    "SelectStatement",
]


class Expr:
    """Base class for expression nodes."""

    def columns(self) -> list["ColumnRef"]:
        """Every column reference in this subtree (planner helper)."""
        return []


@dataclass(frozen=True)
class ColumnRef(Expr):
    """``table.column`` or bare ``column`` (table resolved by the planner)."""

    table: str | None
    column: str

    def columns(self) -> list["ColumnRef"]:
        return [self]

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal(Expr):
    """A number, string, boolean or NULL constant."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Star(Expr):
    """``*`` (optionally ``table.*``)."""

    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """``name(arg, ...)`` — aggregates and ST_* spatial functions alike."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    def columns(self) -> list[ColumnRef]:
        found: list[ColumnRef] = []
        for arg in self.args:
            found.extend(arg.columns())
        return found

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """``left op right`` for comparison, arithmetic and AND/OR."""

    op: str
    left: Expr
    right: Expr

    def columns(self) -> list[ColumnRef]:
        return self.left.columns() + self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """``NOT expr`` / ``- expr``."""

    op: str
    operand: Expr

    def columns(self) -> list[ColumnRef]:
        return self.operand.columns()

    def __str__(self) -> str:
        return f"{self.op} {self.operand}"


@dataclass(frozen=True)
class SelectItem:
    """One projection: an expression with an optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A table in FROM/JOIN with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def exposed_name(self) -> str:
        """The name other clauses refer to this table by."""
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    """``[SPATIAL | INNER] JOIN table [ON cond]``."""

    table: TableRef
    spatial: bool
    on: Expr | None = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


@dataclass
class SelectStatement:
    """A parsed SELECT query."""

    select_items: list[SelectItem]
    from_table: TableRef
    joins: list[JoinClause] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    explain: bool = False
