"""Expression binding and evaluation over row tuples.

The planner flattens each operator's output schema into a *tuple
descriptor* — an ordered list of (table, column) slots — and compiles AST
expressions into Python closures over row tuples, the moral equivalent of
Impala's codegen'd expression trees (the real system JIT-compiles them
with LLVM; we close over slot indexes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import PlanError
from repro.impala.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expr,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
)
from repro.impala.udf import evaluate_spatial, is_spatial_function

__all__ = ["Slot", "TupleDescriptor", "compile_expr", "vectorize_conjuncts"]


@dataclass(frozen=True)
class Slot:
    """One column of an operator's output schema."""

    table: str  # exposed (aliased) table name
    column: str


class TupleDescriptor:
    """Ordered slots describing the rows an operator produces."""

    def __init__(self, slots: list[Slot]):
        self.slots = list(slots)
        self._by_qualified = {(s.table, s.column): i for i, s in enumerate(self.slots)}

    def __len__(self) -> int:
        return len(self.slots)

    def resolve(self, ref: ColumnRef) -> int:
        """Slot index for a column reference; raises on unknown/ambiguous."""
        if ref.table is not None:
            index = self._by_qualified.get((ref.table, ref.column))
            if index is None:
                raise PlanError(f"unknown column {ref.table}.{ref.column}")
            return index
        matches = [
            i for i, slot in enumerate(self.slots) if slot.column == ref.column
        ]
        if not matches:
            raise PlanError(f"unknown column {ref.column!r}")
        if len(matches) > 1:
            raise PlanError(f"ambiguous column {ref.column!r}")
        return matches[0]

    def concat(self, other: "TupleDescriptor") -> "TupleDescriptor":
        """Descriptor for join output rows: left slots then right slots."""
        return TupleDescriptor(self.slots + other.slots)


def compile_expr(expr: Expr, descriptor: TupleDescriptor) -> Callable[[tuple], object]:
    """Compile an expression AST into ``row -> value``.

    NULL (None) propagates through comparisons and arithmetic the SQL way:
    any operation on NULL yields NULL, and WHERE treats NULL as false.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ColumnRef):
        index = descriptor.resolve(expr)
        return lambda row: row[index]
    if isinstance(expr, Star):
        raise PlanError("* is only legal in SELECT lists and COUNT(*)")
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, descriptor)
        if expr.op == "NOT":
            return lambda row: None if operand(row) is None else not operand(row)
        if expr.op == "-":
            return lambda row: None if operand(row) is None else -operand(row)
        raise PlanError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, descriptor)
    if isinstance(expr, FunctionCall):
        return _compile_function(expr, descriptor)
    raise PlanError(f"cannot compile expression {expr!r}")


def _compile_binary(expr: BinaryOp, descriptor: TupleDescriptor):
    left = compile_expr(expr.left, descriptor)
    right = compile_expr(expr.right, descriptor)
    op = expr.op
    if op == "AND":
        return lambda row: _sql_and(left(row), right(row))
    if op == "OR":
        return lambda row: _sql_or(left(row), right(row))
    if op == "IS NULL":
        return lambda row: left(row) is None
    comparators = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
    }
    try:
        func = comparators[op]
    except KeyError:
        raise PlanError(f"unknown operator {op!r}") from None

    def evaluate(row):
        a = left(row)
        b = right(row)
        if a is None or b is None:
            return None
        return func(a, b)

    return evaluate


def _compile_function(expr: FunctionCall, descriptor: TupleDescriptor):
    name = expr.name.upper()
    if is_spatial_function(name):
        arg_funcs = [compile_expr(arg, descriptor) for arg in expr.args]

        def evaluate(row):
            args = [f(row) for f in arg_funcs]
            if any(a is None for a in args):
                return None
            return evaluate_spatial(name, args)

        return evaluate
    if name in ("COUNT", "SUM", "MIN", "MAX", "AVG"):
        raise PlanError(
            f"aggregate {name} must be handled by an aggregation node, "
            "not compiled as a scalar"
        )
    raise PlanError(f"unknown function {expr.name!r}")


_VECTOR_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def vectorize_conjuncts(conjuncts, descriptor: TupleDescriptor):
    """Compile AND-ed conjuncts into a column-batch evaluator, if possible.

    Only ``column <cmp> literal`` (either operand order) conjuncts with
    numeric literals vectorize; any other shape returns ``None`` and the
    caller keeps its row-at-a-time predicate.  The returned evaluator
    takes a batch's column lists and yields a boolean keep-mask — or
    ``None`` when a column holds non-numeric values (NULLs, strings), so
    the scalar path decides and the kept rows are identical either way.
    """
    if not conjuncts:
        return None
    specs: list[tuple[int, str, float, bool]] = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, BinaryOp):
            return None
        op = conjunct.op
        if op not in _VECTOR_COMPARATORS:
            return None
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            slot, literal, flipped = descriptor.resolve(left), right.value, False
        elif isinstance(left, Literal) and isinstance(right, ColumnRef):
            slot, literal, flipped = descriptor.resolve(right), left.value, True
        else:
            return None
        if isinstance(literal, bool) or not isinstance(literal, (int, float)):
            return None
        specs.append((slot, op, float(literal), flipped))

    def evaluate(columns: list[list]):
        mask = None
        for slot, op, literal, flipped in specs:
            values = np.asarray(columns[slot])
            if values.dtype.kind not in "if":
                return None
            compare = _VECTOR_COMPARATORS[op]
            hits = compare(literal, values) if flipped else compare(values, literal)
            mask = hits if mask is None else (mask & hits)
        return mask

    return evaluate


def _sql_and(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return bool(a) and bool(b)


def _sql_or(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return bool(a) or bool(b)
