"""Metastore: table schemas and HDFS locations.

Plays the role of the Hive metastore the Impala frontend consults when
turning a logical plan into a physical one (Section IV): table -> columns,
delimiter, and the HDFS path whose blocks become scan ranges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PlanError
from repro.hdfs import SimulatedHDFS

__all__ = ["ColumnType", "Column", "Table", "Metastore"]


class ColumnType(enum.Enum):
    """Impala column types the ISP-MC dialect needs.

    Geometry is stored as STRING (WKT) — the paper's workaround for
    Impala's lack of user-defined types ("we represent geometry as
    strings to bypass this problem", Section IV).
    """

    BIGINT = "BIGINT"
    DOUBLE = "DOUBLE"
    STRING = "STRING"
    BOOLEAN = "BOOLEAN"


@dataclass(frozen=True)
class Column:
    """One column: a name and a type."""

    name: str
    type: ColumnType


@dataclass(frozen=True)
class Table:
    """A registered external text table."""

    name: str
    columns: tuple[Column, ...]
    path: str
    delimiter: str = "\t"

    def column_index(self, name: str) -> int:
        """Position of ``name`` in the row tuple; raises on unknown names."""
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise PlanError(f"table {self.name} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """True when the table defines a column called ``name``."""
        return any(column.name == name for column in self.columns)

    def parse_row(self, line: str) -> tuple | None:
        """Convert one text line to a typed row tuple; None on bad rows.

        Mirrors Impala's text scanners: rows with the wrong field count or
        unconvertible numerics become NULL-row skips rather than errors.
        """
        fields = line.split(self.delimiter)
        if len(fields) != len(self.columns):
            return None
        values: list = []
        for field_text, column in zip(fields, self.columns):
            if column.type is ColumnType.BIGINT:
                try:
                    values.append(int(field_text))
                except ValueError:
                    return None
            elif column.type is ColumnType.DOUBLE:
                try:
                    values.append(float(field_text))
                except ValueError:
                    return None
            elif column.type is ColumnType.BOOLEAN:
                values.append(field_text.strip().lower() in ("true", "1"))
            else:
                values.append(field_text)
        return tuple(values)


class Metastore:
    """Name -> table registry with existence validation against HDFS."""

    def __init__(self, hdfs: SimulatedHDFS):
        self._hdfs = hdfs
        self._tables: dict[str, Table] = {}

    def create_table(
        self,
        name: str,
        columns: list[tuple[str, ColumnType]],
        path: str,
        delimiter: str = "\t",
    ) -> Table:
        """Register an external table over an existing HDFS file."""
        if name in self._tables:
            raise PlanError(f"table {name!r} already exists")
        if not self._hdfs.exists(path):
            raise PlanError(f"no HDFS file at {path!r} for table {name!r}")
        table = Table(
            name, tuple(Column(n, t) for n, t in columns), path, delimiter
        )
        self._tables[name] = table
        return table

    def get(self, name: str) -> Table:
        """Look up a table; raises :class:`PlanError` when missing."""
        try:
            return self._tables[name]
        except KeyError:
            raise PlanError(f"unknown table {name!r}") from None

    def table_bytes(self, name: str) -> int:
        """On-disk size of a table's backing file.

        The cheapest statistic the real metastore serves (``COMPUTE
        STATS`` would refresh it); the planner's broadcast-vs-partitioned
        choice needs nothing finer.
        """
        return self._hdfs.status(self.get(name).path).size

    def drop_table(self, name: str) -> None:
        """Unregister a table (the HDFS file is left in place)."""
        if name not in self._tables:
            raise PlanError(f"unknown table {name!r}")
        del self._tables[name]

    def tables(self) -> list[str]:
        """Sorted names of all registered tables."""
        return sorted(self._tables)
