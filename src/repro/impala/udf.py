"""Spatial UDFs: ST_WITHIN, ST_NEARESTD, ST_INTERSECTS, ST_CONTAINS, ST_DISTANCE.

Section IV: "the UDFs for evaluating spatial relationships (e.g.,
intersect and contains) are simple wrappers of the corresponding GEOS
functions".  Accordingly these functions take WKT strings, parse them
per call (the string-representation tax the paper accepts for fairness),
and evaluate the predicate with the configured refinement engine — the
*slow* (GEOS-like) engine by default, matching ISP-MC.

The indexed spatial-join node bypasses these wrappers; they serve the
naive cross-join fallback, post-join residual predicates, and tests.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.model import Resource
from repro.errors import ImpalaError
from repro.geometry import wkt as wkt_mod
from repro.geometry.algorithms import distance as distance_mod
from repro.geometry.algorithms import predicates
from repro.spark.taskcontext import current_task

__all__ = ["SPATIAL_FUNCTIONS", "is_spatial_function", "evaluate_spatial"]


def _parse(text: object) -> object:
    if not isinstance(text, str):
        raise ImpalaError(f"spatial UDFs take WKT strings, got {type(text).__name__}")
    current_task().add(Resource.WKT_BYTES, len(text))
    return wkt_mod.loads(text)


def st_within(left_wkt: str, right_wkt: str) -> bool:
    """True when the left geometry lies within the right geometry."""
    return predicates.within(_parse(left_wkt), _parse(right_wkt))


def st_contains(left_wkt: str, right_wkt: str) -> bool:
    """True when the left geometry contains the right geometry."""
    return predicates.within(_parse(right_wkt), _parse(left_wkt))


def st_intersects(left_wkt: str, right_wkt: str) -> bool:
    """True when the geometries share at least one point."""
    return predicates.intersects(_parse(left_wkt), _parse(right_wkt))


def st_distance(left_wkt: str, right_wkt: str) -> float:
    """Minimum Euclidean distance between the geometries."""
    return distance_mod.distance(_parse(left_wkt), _parse(right_wkt))


def st_nearestd(left_wkt: str, right_wkt: str, d: float) -> bool:
    """True when the geometries lie within distance ``d`` (Fig 1's NearestD)."""
    return distance_mod.distance(_parse(left_wkt), _parse(right_wkt)) <= float(d)


SPATIAL_FUNCTIONS: dict[str, Callable] = {
    "ST_WITHIN": st_within,
    "ST_CONTAINS": st_contains,
    "ST_INTERSECTS": st_intersects,
    "ST_DISTANCE": st_distance,
    "ST_NEARESTD": st_nearestd,
}

# Predicates eligible to drive an indexed spatial join (boolean-valued,
# first arg = probe side geometry, second arg = build side geometry).
JOIN_PREDICATES = frozenset({"ST_WITHIN", "ST_INTERSECTS", "ST_NEARESTD", "ST_CONTAINS"})


def is_spatial_function(name: str) -> bool:
    """True when ``name`` (upper-cased) is a registered ST_ function."""
    return name.upper() in SPATIAL_FUNCTIONS


def evaluate_spatial(name: str, args: list) -> object:
    """Invoke a spatial UDF by name with evaluated arguments."""
    try:
        func = SPATIAL_FUNCTIONS[name.upper()]
    except KeyError:
        raise ImpalaError(f"unknown spatial function {name!r}") from None
    return func(*args)
