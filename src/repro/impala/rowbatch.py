"""Row batches: the unit of data flow between Impala exec nodes.

Section IV of the paper stresses "the fundamental role of the row batch
structure in determining data flows between parent and child AST nodes";
ISP-MC builds its R-tree from the right side's row batches and probes it
batch-by-batch, with OpenMP statically splitting each batch across cores.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ImpalaError

__all__ = ["RowBatch", "BATCH_SIZE", "batches_of"]

BATCH_SIZE = 1024  # Impala's default row-batch capacity


class RowBatch:
    """A bounded list of row tuples flowing between exec nodes."""

    __slots__ = ("rows", "capacity")

    def __init__(self, rows: list[tuple] | None = None, capacity: int = BATCH_SIZE):
        if capacity < 1:
            raise ImpalaError(f"row-batch capacity must be positive, got {capacity}")
        self.rows: list[tuple] = rows if rows is not None else []
        self.capacity = capacity

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    @property
    def is_full(self) -> bool:
        """True once the batch reaches its capacity."""
        return len(self.rows) >= self.capacity

    def add(self, row: tuple) -> None:
        """Append one row tuple."""
        self.rows.append(row)

    def column(self, slot: int) -> list:
        """One slot's values across the whole batch (columnar view)."""
        return [row[slot] for row in self.rows]

    def columns(self) -> list[list]:
        """All slots as column lists; empty list for an empty batch."""
        if not self.rows:
            return []
        return [self.column(slot) for slot in range(len(self.rows[0]))]


def batches_of(rows: Iterable[tuple], batch_size: int = BATCH_SIZE) -> Iterator[RowBatch]:
    """Re-batch a row stream into :class:`RowBatch` chunks."""
    if batch_size < 1:
        raise ImpalaError(f"batch_size must be positive, got {batch_size}")
    batch = RowBatch(capacity=batch_size)
    for row in rows:
        batch.add(row)
        if len(batch) >= batch_size:
            yield batch
            batch = RowBatch(capacity=batch_size)
    if len(batch):
        yield batch
