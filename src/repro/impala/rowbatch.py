"""Row batches: the unit of data flow between Impala exec nodes.

Section IV of the paper stresses "the fundamental role of the row batch
structure in determining data flows between parent and child AST nodes";
ISP-MC builds its R-tree from the right side's row batches and probes it
batch-by-batch, with OpenMP statically splitting each batch across cores.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["RowBatch", "BATCH_SIZE", "batches_of"]

BATCH_SIZE = 1024  # Impala's default row-batch capacity


class RowBatch:
    """A bounded list of row tuples flowing between exec nodes."""

    __slots__ = ("rows",)

    def __init__(self, rows: list[tuple] | None = None):
        self.rows: list[tuple] = rows if rows is not None else []

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    @property
    def is_full(self) -> bool:
        """True once the batch reaches its capacity."""
        return len(self.rows) >= BATCH_SIZE

    def add(self, row: tuple) -> None:
        """Append one row tuple."""
        self.rows.append(row)


def batches_of(rows: Iterable[tuple], batch_size: int = BATCH_SIZE) -> Iterator[RowBatch]:
    """Re-batch a row stream into :class:`RowBatch` chunks."""
    batch = RowBatch()
    for row in rows:
        batch.add(row)
        if len(batch) >= batch_size:
            yield batch
            batch = RowBatch()
    if len(batch):
        yield batch
