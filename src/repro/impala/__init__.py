"""Mini-Impala substrate: SQL frontend, planner, row-batch backend."""

from repro.impala.catalog import Column, ColumnType, Metastore, Table
from repro.impala.coordinator import ImpalaBackend, QueryResult
from repro.impala.exec_nodes import (
    Aggregator,
    CrossJoinNode,
    FilterNode,
    InstanceContext,
    ScanNode,
)
from repro.impala.parser import parse
from repro.impala.planner import PhysicalPlan, Planner
from repro.impala.rowbatch import BATCH_SIZE, RowBatch, batches_of

__all__ = [
    "Column",
    "ColumnType",
    "Metastore",
    "Table",
    "ImpalaBackend",
    "QueryResult",
    "Aggregator",
    "CrossJoinNode",
    "FilterNode",
    "InstanceContext",
    "ScanNode",
    "parse",
    "PhysicalPlan",
    "Planner",
    "BATCH_SIZE",
    "RowBatch",
    "batches_of",
]
