"""SQL lexer for the Impala frontend.

Tokenises the SQL dialect the ISP-MC prototype understands: standard
SELECT queries plus the ``SPATIAL JOIN`` keyword the paper adds to the
grammar (Section IV) and the ``ST_*`` spatial predicates of Fig 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLParseError

__all__ = ["Token", "TokenType", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    """Lexical categories the parser dispatches on."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    END = "end"


KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "AS", "JOIN", "SPATIAL",
        "HAVING", "EXPLAIN",
        "INNER", "ON", "GROUP", "ORDER", "BY", "ASC", "DESC", "LIMIT",
        "COUNT", "SUM", "MIN", "MAX", "AVG", "DISTINCT", "BETWEEN", "IN",
        "IS", "NULL", "TRUE", "FALSE", "LIKE",
    }
)

_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", ".", "+", "-", "/")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error reporting)."""

    type: TokenType
    value: str
    position: int


def tokenize(sql: str) -> list[Token]:
    """Split a SQL string into tokens; raises :class:`SQLParseError`."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = sql.find("'", i + 1)
            if end < 0:
                raise SQLParseError("unterminated string literal", i)
            tokens.append(Token(TokenType.STRING, sql[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            start = i
            seen_dot = False
            while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
                if sql[i] == ".":
                    seen_dot = True
                i += 1
            if i < n and sql[i] in "eE":
                i += 1
                if i < n and sql[i] in "+-":
                    i += 1
                while i < n and sql[i].isdigit():
                    i += 1
            tokens.append(Token(TokenType.NUMBER, sql[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        for symbol in _SYMBOLS:
            if sql.startswith(symbol, i):
                tokens.append(Token(TokenType.SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise SQLParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.END, "", n))
    return tokens
