"""Impala backend: coordinator + worker instances with static scheduling.

Execution follows Section IV of the paper:

1. the frontend parses and plans the query (once, on the coordinator);
2. scan ranges are bound to fragment instances (one per node) **before
   execution starts** — round-robin, never rebalanced;
3. the build (right) side is scanned by every instance's share of ranges
   and broadcast; each instance builds an in-memory R-tree from the
   broadcast row batches;
4. each instance probes its left rows batch-by-batch, with OpenMP-static
   multi-core refinement, and ships results (or partial aggregates) to
   the coordinator, which merges/sorts/projects.

The query's simulated runtime is frontend planning + fragment startup
(LLVM JIT et al.) + the *maximum* instance time (static inter-node
scheduling: everyone waits for the straggler) + coordinator merge time.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.cache import cache_for, estimate_index_bytes, fingerprint_rows
from repro.cluster.model import ClusterSpec, CostModel, Resource
from repro.errors import ImpalaError, PlanError
from repro.hdfs import SimulatedHDFS, split_boundaries
from repro.impala.catalog import Metastore
from repro.impala.exec_nodes import (
    Aggregator,
    CrossJoinNode,
    ExecNode,
    FilterNode,
    InstanceContext,
    ScanNode,
)
from repro.impala.exprs import TupleDescriptor, compile_expr, vectorize_conjuncts
from repro.impala.rowbatch import BATCH_SIZE
from repro.impala.parser import parse
from repro.impala.planner import PhysicalPlan, Planner
from repro.obs.events import EventLog, get_event_log, install_event_log
from repro.obs.profile import ProfileNode, QueryProfile
from repro.obs.tracer import get_tracer
from repro.runtime.config import RuntimeConfig
from repro.runtime.faults import InjectedFaultError
from repro.runtime.pool import current_worker_id, make_pool, picklable_error
from repro.runtime.recovery import RecoveryContext, resolve_faults
from repro.runtime.shipping import ObsCapture, apply_capture, capture_observability
from repro.spark.shuffle import estimate_bytes
from repro.spark.taskcontext import task_scope

__all__ = ["QueryResult", "ImpalaBackend"]


@dataclass
class QueryResult:
    """Rows plus the accounting needed by the benchmark harness."""

    columns: list[str]
    rows: list[tuple]
    simulated_seconds: float
    instances: list[InstanceContext] = field(default_factory=list)
    plan: PhysicalPlan | None = None
    coordinator_seconds: float = 0.0
    # Additive decomposition of simulated_seconds, filled by the
    # coordinator: planning / fragment-startup / execution / coordinator.
    breakdown: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def to_profile(self, name: str = "impala-query") -> QueryProfile:
        """Impala-style runtime profile of this query.

        Top-level children mirror :attr:`breakdown` (their simulated
        seconds sum to :attr:`simulated_seconds` exactly); the execution
        node carries one child per fragment instance — the static-
        scheduling straggler is the longest of those concurrent bars.
        """
        root = ProfileNode(
            name,
            sim_seconds=self.simulated_seconds,
            info={
                "engine": "ISP-MC",
                "instances": len(self.instances),
                "rows": len(self.rows),
            },
        )
        for phase, seconds in self.breakdown.items():
            node = root.add_child(ProfileNode(phase, sim_seconds=seconds))
            if phase != "execution" or not self.instances:
                continue
            node.concurrent = True
            node.info = {
                "straggler_seconds": self.straggler_seconds,
                "mean_instance_seconds": self.mean_instance_seconds,
                "imbalance": (
                    self.straggler_seconds / self.mean_instance_seconds
                    if self.mean_instance_seconds
                    else 1.0
                ),
            }
            for instance in self.instances:
                node.add_child(
                    ProfileNode(
                        f"instance-{instance.node_id}",
                        sim_seconds=instance.total_seconds,
                        counters=dict(instance.metrics.counts),
                        info={
                            "serial_seconds": instance.serial_seconds,
                            "parallel_seconds": instance.parallel_seconds,
                            "row_batches": instance.row_batches,
                        },
                        concurrent=True,
                    )
                )
        return QueryProfile(root)

    def explain_report(self, ratio: float | None = None):
        """EXPLAIN ANALYZE view of this query's measured profile.

        Wraps :meth:`to_profile` in the shared
        :class:`~repro.obs.explain.ExplainReport` shape (actuals plus
        per-phase straggler/imbalance annotations; the estimate columns
        stay empty — the Impala planner prices fragments, not the
        operator tree), so ISP-MC runs render and serialise through the
        same machinery as the core and SpatialSpark substrates.
        """
        from repro.obs.explain import (
            DEFAULT_MISESTIMATE_RATIO,
            report_from_profile,
        )

        report = report_from_profile(
            self.to_profile(),
            ratio=DEFAULT_MISESTIMATE_RATIO if ratio is None else ratio,
            method="ISP-MC",
        )
        if self.plan is not None:
            report.plan["fragments"] = len(self.plan.fragments)
        report.plan["instances"] = len(self.instances)
        return report

    @property
    def straggler_seconds(self) -> float:
        """The slowest instance's time (the static-scheduling bottleneck)."""
        return max((i.total_seconds for i in self.instances), default=0.0)

    @property
    def mean_instance_seconds(self) -> float:
        """Average instance time (straggler/mean gauges the imbalance)."""
        if not self.instances:
            return 0.0
        return sum(i.total_seconds for i in self.instances) / len(self.instances)


class ImpalaBackend:
    """A mini-Impala cluster: metastore, planner, coordinator, workers."""

    def __init__(
        self,
        cluster: ClusterSpec,
        hdfs: SimulatedHDFS | None = None,
        cost_model: CostModel | None = None,
        engine: str = "slow",
        assignment: str = "round_robin",
        build_cost_weight: float = 1.0,
        batch_size: int | None = None,
        batch_refine: bool = True,
        executors: int | str | None = None,
        events_out: str | None = None,
        runtime: RuntimeConfig | None = None,
    ):
        if assignment not in ("contiguous", "round_robin"):
            raise ImpalaError(
                f"assignment must be contiguous|round_robin, got {assignment!r}"
            )
        if batch_size is None:
            batch_size = BATCH_SIZE
        if not isinstance(batch_size, int) or batch_size < 1:
            raise ImpalaError(
                f"batch_size must be a positive integer, got {batch_size!r}"
            )
        self.cluster = cluster
        self.hdfs = hdfs or SimulatedHDFS(
            datanodes=tuple(f"node{i}" for i in range(cluster.num_nodes))
        )
        self.cost_model = cost_model or CostModel()
        self.engine_name = engine
        self.assignment = assignment
        self.batch_size = batch_size
        self.batch_refine = batch_refine
        # Representativity correction for right-side work at reduced
        # benchmark scale; see MaterializedWorkload.build_cost_weight.
        self.build_cost_weight = build_cost_weight
        self.metastore = Metastore(self.hdfs)
        self._planner = Planner(self.metastore, num_nodes=self.cluster.num_nodes)
        # Unified runtime policy.  Precedence rule: an explicit
        # RuntimeConfig wins over the loose executors/events_out
        # keywords; without one, the loose keywords are packed into an
        # implicit RuntimeConfig and behave exactly as before.
        if runtime is None:
            runtime = RuntimeConfig(executors=executors, events_out=events_out)
        self.runtime = runtime
        # Coordinator-side recovery state.  Impala's scheduling is static
        # (Section IV): there is no per-fragment retry or speculation —
        # an injected fragment fault cancels the whole query, which the
        # coordinator restarts from scratch within runtime.restart_budget.
        self.recovery = RecoveryContext(runtime)
        # Cross-query cache handle (None unless the runtime sets
        # cache_budget_bytes); _build_side reuses built R-tree bundles
        # through it.
        self.cache = cache_for(runtime)
        self._query_counter = 0
        # Real-parallelism knob: fragment instances for different workers
        # run concurrently on a process pool while keeping the *static*
        # fragment→worker binding (instance i still owns exactly the scan
        # ranges bound to it at plan time — the pool changes when a
        # fragment runs, never what it runs).  Results are byte-identical
        # with the pool on or off.
        self.task_pool = make_pool(runtime.executors)
        # Structured event log: given a JSONL path, every executed query
        # emits QueryStart/FragmentStart/FragmentEnd/QueryEnd events the
        # monitor replays.  None keeps the disabled global sink (no-op).
        self._event_log = (
            EventLog(path=runtime.events_out) if runtime.events_out else None
        )
        self._events_query: int | None = None

    # -- public API -----------------------------------------------------------

    @property
    def event_log(self) -> EventLog | None:
        """The backend-owned event log (None when ``events_out`` unset)."""
        return self._event_log

    def close_events(self) -> None:
        """Flush and close the events file (the in-memory stream stays)."""
        if self._event_log is not None:
            self._event_log.close()

    def execute(self, sql: str) -> QueryResult:
        """Parse, plan and run one SELECT (or describe it, for EXPLAIN)."""
        with get_tracer().span("impala-query", category="query", sql=sql) as span:
            statement = parse(sql)
            plan = self._planner.plan(statement)
            if plan.explain:
                lines = self.explain_plan(plan)
                return QueryResult(
                    columns=["Explain"],
                    rows=[(line,) for line in lines],
                    simulated_seconds=self.cost_model.impala_plan_base,
                    plan=plan,
                    breakdown={"planning": self.cost_model.impala_plan_base},
                )
            with install_event_log(self._event_log):
                log = get_event_log()
                self._events_query = log.next_id("query") if log.enabled else None
                if self._events_query is not None:
                    log.emit(
                        "QueryStart",
                        query=self._events_query,
                        name="impala-query",
                        engine="impala",
                        wall_start=time.perf_counter(),
                    )
                try:
                    result = self._execute_with_restarts(plan, log)
                    if self._events_query is not None:
                        log.emit(
                            "QueryEnd",
                            query=self._events_query,
                            name="impala-query",
                            sim_seconds=result.simulated_seconds,
                            rows=len(result),
                            wall_end=time.perf_counter(),
                        )
                finally:
                    self._events_query = None
            span.add_sim(result.simulated_seconds)
            span.set_attr("rows", len(result))
            return result

    def explain_plan(self, plan: PhysicalPlan) -> list[str]:
        """Render the physical plan the way ``EXPLAIN`` prints it."""
        lines = [f"PLAN (instances={self.cluster.num_nodes}, "
                 f"assignment={self.assignment})"]
        indent = "  "
        lines.append(f"{indent}EXCHANGE [MERGE] -> coordinator")
        cursor = indent * 2
        if plan.aggregate is not None:
            keys = ", ".join(str(e) for e in plan.aggregate.key_exprs) or "<global>"
            aggs = ", ".join(
                f"{name}({arg if arg is not None else '*'})"
                for name, arg, _ in plan.aggregate.functions
            )
            lines.append(f"{cursor}AGGREGATE [FINALIZE] group by: {keys}; {aggs}")
            if plan.having is not None:
                lines.append(f"{cursor}HAVING {plan.having}")
            lines.append(f"{cursor}AGGREGATE [PARTIAL] (per instance)")
            cursor += indent
        if plan.residual:
            conj = " AND ".join(str(c) for c in plan.residual)
            lines.append(f"{cursor}FILTER {conj}")
        if plan.join is not None:
            pred = plan.join.predicate
            distribution = plan.join.distribution.upper()
            kind = (
                f"SPATIAL JOIN [R-tree, {distribution}]" if plan.join.indexed
                else f"CROSS JOIN [single-core, {distribution}]"
            )
            lines.append(
                f"{cursor}{kind} {pred.function}({pred.probe_column}, "
                f"{pred.build_column}"
                + (f", {pred.radius}" if pred.radius else "") + ")"
            )
            cursor += indent
            build_filters = " AND ".join(
                str(c) for c in plan.join.build.conjuncts
            )
            lines.append(
                f"{cursor}SCAN {plan.join.build.table.name} [{distribution}]"
                + (f" filter: {build_filters}" if build_filters else "")
            )
        probe_filters = " AND ".join(str(c) for c in plan.probe.conjuncts)
        lines.append(
            f"{cursor}SCAN {plan.probe.table.name} "
            f"[{len(self._assign_ranges(plan.probe.table.path, [None] * self.cluster.num_nodes))}x ranges, static]"
            + (f" filter: {probe_filters}" if probe_filters else "")
        )
        return lines

    # -- execution ---------------------------------------------------------------

    def _execute_with_restarts(self, plan: PhysicalPlan, log) -> QueryResult:
        """Run the plan; on an injected fault, restart the whole query.

        This is the paper's static model made concrete: Impala has no
        lineage, so a lost fragment cannot be recomputed in isolation —
        the coordinator cancels the query and resubmits it from scratch,
        up to ``runtime.restart_budget`` times.  Faults are resolved
        before any fragment work starts (see :meth:`_execute_plan`), so a
        cancelled attempt charges nothing and the successful attempt is
        byte-identical to a fault-free run.
        """
        self._query_counter += 1
        restarts = 0
        while True:
            try:
                return self._execute_plan(plan, restart=restarts)
            except InjectedFaultError as error:
                budget = self.runtime.restart_budget
                if restarts >= budget:
                    raise ImpalaError(
                        f"query failed after {restarts} restart(s) "
                        f"(restart budget {budget}): {error}"
                    ) from error
                restarts += 1
                if self._events_query is not None and log.enabled:
                    log.emit(
                        "QueryRestarted",
                        query=self._events_query,
                        restart=restarts,
                        reason=error.fault.kind,
                        fragment=error.task,
                    )

    def _execute_plan(self, plan: PhysicalPlan, restart: int = 0) -> QueryResult:
        model = self.cost_model
        if self.recovery.active:
            # Resolve injected fragment faults up front — before the
            # build side scans anything.  Impala binds fragments
            # statically and retries nothing, so every fragment gets
            # exactly one attempt (limit=1) and any non-slow fault
            # surfaces as its own error class for the restart loop.
            # ``slow`` faults are deliberately ignored: a static engine
            # has no speculation, the straggler just finishes.
            resolve_faults(
                self.recovery,
                self.cluster.num_nodes,
                scope=f"query-{self._query_counter}",
                events=(self._events_query, None),
                limit=1,
                base_round=restart,
            )
        instances = [
            InstanceContext(node_id=i, cores=self.cluster.cores_per_node, cost_model=model)
            for i in range(self.cluster.num_nodes)
        ]
        tracer = get_tracer()
        probe_ranges = self._assign_ranges(plan.probe.table.path, instances)
        row_descriptor = plan.row_descriptor
        shared_index = None
        if plan.join is not None:
            with tracer.span("build-side", category="phase") as build_span:
                shared_index = self._build_side(plan, instances)
                build_span.set_attr("index_entries", len(shared_index))
        # Probe fragments: real execution once per instance's ranges.
        residual_eval = self._compile_conjuncts(plan.residual, row_descriptor)
        # One entry per instance: its materialised partial-aggregate pairs
        # (a plain list so pooled fragments can ship it — the Aggregator
        # itself holds compiled expressions and stays worker-side).
        aggregators: list[list] = []
        # Projection pushdown: instances materialise only the SELECT
        # columns plus precomputed ORDER BY keys, not whole joined rows
        # (which would re-ship every WKT string to the coordinator).
        # Aggregated queries exchange partial states instead, and their
        # aggregate-bearing projections never compile as row scalars.
        if plan.aggregate is None:
            projector = self._compile_projection(plan, row_descriptor)
            order_key_fns = [
                compile_expr(item.expr, row_descriptor) for item in plan.order_by
            ]
        else:
            projector = None
            order_key_fns = []
        instance_keyed_rows: list[list[tuple[tuple, tuple]]] = []
        pool = self.task_pool
        if pool.is_serial or not pool.supports_closures or len(instances) < 2:
            for instance in instances:
                payload = self._run_fragment(
                    plan, instance, probe_ranges[instance.node_id],
                    shared_index, residual_eval, projector, order_key_fns,
                )
                if payload[0] == "agg":
                    aggregators.append(payload[1])
                else:
                    instance_keyed_rows.append(payload[1])
        else:
            instances = self._run_fragments_pooled(
                pool, plan, instances, probe_ranges, shared_index,
                residual_eval, projector, order_key_fns,
                aggregators, instance_keyed_rows,
            )
        # Coordinator: merge, sort, limit, project.
        coordinator_seconds = 0.0
        if plan.aggregate is not None:
            final = self._new_aggregator(plan, row_descriptor)
            for partials in aggregators:
                for key, states in partials:
                    final.merge(key, states)
            output_rows = list(final.finalize())
            output_rows = self._project_aggregate(plan, output_rows)
            if plan.having is not None:
                having = self._compile_output_expr(plan, plan.having)
                output_rows = [row for row in output_rows if having(row) is True]
            coordinator_seconds += model.task_seconds(
                {Resource.ROWS_OUT: len(output_rows) * 4.0}
            )
            output_rows = self._order_and_limit_agg(plan, output_rows)
        else:
            merged = [kr for keyed in instance_keyed_rows for kr in keyed]
            coordinator_seconds += model.task_seconds(
                {Resource.ROWS_OUT: float(len(merged))}
            )
            for i in reversed(range(len(plan.order_by))):
                ascending = plan.order_by[i].ascending
                merged.sort(
                    key=lambda kr, i=i: _null_safe_key(kr[0][i]),
                    reverse=not ascending,
                )
            if plan.limit is not None:
                merged = merged[: plan.limit]
            output_rows = [projected for _, projected in merged]
        pressure = (
            model.impala_memory_pressure_factor
            if self.cluster.mem_per_node_gb
            <= model.impala_memory_pressure_threshold_gb
            else 1.0
        )
        execution_seconds = (
            max((i.total_seconds for i in instances), default=0.0)
            * model.impala_infra_factor
            * pressure
        )
        breakdown = {
            "planning": model.impala_plan_base,
            "fragment-startup": model.impala_fragment_startup,
            "execution": execution_seconds,
            "coordinator": coordinator_seconds,
        }
        simulated = sum(breakdown.values())
        tracer.event(
            "coordinator-merge",
            category="phase",
            sim_seconds=coordinator_seconds,
            rows=len(output_rows),
        )
        return QueryResult(
            columns=list(plan.output_names),
            rows=output_rows,
            simulated_seconds=simulated,
            instances=instances,
            plan=plan,
            coordinator_seconds=coordinator_seconds,
            breakdown=breakdown,
        )

    # -- fragment execution -----------------------------------------------------

    def _run_fragment(
        self, plan, instance, scan_ranges, shared_index,
        residual_eval, projector, order_key_fns,
    ) -> tuple:
        """Execute one fragment instance; returns its exchange payload.

        ``("agg", partials)`` for aggregated queries (the materialised
        partial-state pairs the coordinator merges), else ``("rows",
        keyed)`` with precomputed ORDER BY keys.  Runs identically inline
        (serial path, driver tracer) and inside a pool worker (capture
        tracer) — the span, charging and byte-accounting arithmetic is
        shared, which is what keeps the two modes byte-identical.
        """
        log = get_event_log()
        emit_events = log.enabled and self._events_query is not None
        if emit_events:
            log.emit(
                "FragmentStart",
                query=self._events_query,
                fragment=instance.node_id,
                worker=current_worker_id(),
                pid=os.getpid(),
                wall_start=time.perf_counter(),
            )
        fragment_span = get_tracer().span(
            f"fragment-instance-{instance.node_id}", category="fragment"
        )
        seconds_before = instance.total_seconds
        with fragment_span as span, task_scope(instance.metrics):
            root = self._instance_pipeline(
                plan, instance, scan_ranges, shared_index, residual_eval
            )
            if plan.aggregate is not None:
                aggregator = self._new_aggregator(plan, plan.row_descriptor)
                for batch in root.batches():
                    for row in batch:
                        aggregator.accumulate(row)
                partials = list(aggregator.partials())
                exchange = sum(estimate_bytes((k, s)) for k, s in partials)
                payload = ("agg", partials)
            else:
                keyed = [
                    (tuple(fn(row) for fn in order_key_fns), projector(row))
                    for row in root.rows()
                ]
                exchange = sum(estimate_bytes(r) for r in keyed)
                payload = ("rows", keyed)
            # Result exchange crosses the network only on a real
            # cluster; single-node results land in a local buffer.
            if self.cluster.num_nodes > 1:
                instance.charge_serial(Resource.SHUFFLE_BYTES, exchange)
        span.add_sim(instance.total_seconds - seconds_before)
        span.set_attr("row_batches", instance.row_batches)
        if emit_events:
            log.emit(
                "FragmentEnd",
                query=self._events_query,
                fragment=instance.node_id,
                worker=current_worker_id(),
                pid=os.getpid(),
                wall_end=time.perf_counter(),
                sim_seconds=instance.total_seconds - seconds_before,
                counters=dict(instance.metrics.counts),
                row_batches=instance.row_batches,
            )
        return payload

    def _run_fragments_pooled(
        self, pool, plan, instances, probe_ranges, shared_index,
        residual_eval, projector, order_key_fns,
        aggregators, instance_keyed_rows,
    ) -> list[InstanceContext]:
        """All fragment instances concurrently; returns the mutated contexts.

        Static binding is preserved by construction: each task closes
        over one ``(instance, scan_ranges)`` pair fixed at plan time —
        the pool only decides *when* a fragment runs, never *what* it
        runs.  Workers mutate their forked copy of the InstanceContext
        and ship it back whole (it is a picklable dataclass of floats and
        counter dicts); spans and registry increments ride back in an
        :class:`ObsCapture`, merged here in instance order.
        """

        def make_task(instance, scan_ranges):
            def run_fragment():
                capture = ObsCapture()
                payload = None
                error = None
                with capture_observability(capture):
                    try:
                        payload = self._run_fragment(
                            plan, instance, scan_ranges, shared_index,
                            residual_eval, projector, order_key_fns,
                        )
                    except Exception as exc:  # noqa: BLE001 - re-raised on driver
                        error = picklable_error(exc)
                return (instance, payload, capture, error)

            return run_fragment

        shipments = pool.run(
            [
                make_task(instance, probe_ranges[instance.node_id])
                for instance in instances
            ]
        )
        merged: list[InstanceContext] = []
        for instance, payload, capture, error in shipments:
            apply_capture(capture)
            if error is not None:
                raise error
            merged.append(instance)
            if payload[0] == "agg":
                aggregators.append(payload[1])
            else:
                instance_keyed_rows.append(payload[1])
        return merged

    # -- fragment construction --------------------------------------------------

    def _assign_ranges(
        self, path: str, instances: list[InstanceContext]
    ) -> list[list[tuple[int, int]]]:
        """Static scan-range assignment — fixed at 'plan time', never moved.

        ``contiguous`` (default) gives each instance a contiguous run of
        the file's blocks, the locality-driven placement a pipelined HDFS
        writer produces (consecutive blocks share replicas); with
        spatially-ordered files this is the inter-node skew behind the
        paper's "some Impala instances take much longer" observation.
        ``round_robin`` interleaves blocks — the a2 ablation's milder
        static policy.
        """
        ranges = split_boundaries(self.hdfs, path, min_splits=len(instances))
        assigned: list[list[tuple[int, int]]] = [[] for _ in instances]
        if self.assignment == "round_robin":
            for i, scan_range in enumerate(ranges):
                assigned[i % len(instances)].append(scan_range)
            return assigned
        n = len(ranges)
        workers = len(instances)
        base = n // workers
        remainder = n % workers
        start = 0
        for w in range(workers):
            size = base + (1 if w < remainder else 0)
            assigned[w] = ranges[start : start + size]
            start += size
        return assigned

    def _build_side(
        self, plan: PhysicalPlan, instances: list[InstanceContext]
    ):
        """Scan + distribute + index the right side.

        The scan is distributed (each instance reads its own ranges).
        Under ``broadcast`` distribution *every* instance is charged for
        receiving the full row set, parsing its WKT and building its own
        R-tree copy — we build one real index and bill each instance.
        Under ``partitioned`` distribution (the planner's choice for large
        build sides) each side crosses the network once, so an instance
        pays a 1/N shuffle share of both tables and parses only its own
        build partition.  Execution still uses the one real shared index —
        results are identical by construction; only the billing differs.
        """
        from repro.core.isp import build_spatial_index

        join = plan.join
        build_ranges = self._assign_ranges(join.build.table.path, instances)
        build_filter = self._compile_conjuncts(
            join.build.conjuncts, join.build.descriptor
        )
        all_rows: list[tuple] = []
        for instance in instances:
            with task_scope(instance.metrics):
                scan = ScanNode(
                    instance,
                    self.hdfs,
                    join.build.table,
                    build_ranges[instance.node_id],
                    row_filter=build_filter,
                    batch_size=self.batch_size,
                )
                for batch in scan.batches():
                    all_rows.extend(batch.rows)
        geometry_slot = join.build.descriptor.resolve(join.predicate.build_column)
        from repro.core.operators import SpatialOperator

        operator = SpatialOperator.from_sql(join.predicate.function)
        # Cross-query cache: the scan above always runs (it charges each
        # instance's HDFS/scan metrics and produced the rows we key on);
        # only the R-tree construction and the byte-estimation walk are
        # reused.  The cached bundle carries the *unweighted* totals so
        # one entry serves backends with different build_cost_weight.
        radius = join.predicate.radius or 0.0
        bundle_key = None
        if self.cache is not None:
            try:
                bundle_key = fingerprint_rows(
                    all_rows, "impala-build-side", geometry_slot,
                    operator.value, float(radius), self.engine_name,
                )
            except TypeError:
                bundle_key = None
        bundle = (
            self.cache.get(bundle_key, "impala-build-side")
            if bundle_key is not None
            else None
        )
        if bundle is None:
            index, wkt_bytes, _ = build_spatial_index(
                all_rows, geometry_slot, operator, radius, self.engine_name,
                columnar=self.runtime.columnar,
            )
            raw_build_bytes = sum(estimate_bytes(r) for r in all_rows)
            if bundle_key is not None:
                self.cache.put(
                    bundle_key, "impala-build-side",
                    (index, wkt_bytes, raw_build_bytes),
                    size_bytes=estimate_index_bytes(index) + 16,
                    build_cost=float(wkt_bytes)
                    + sum(index.build_cost_units().values()),
                )
        else:
            index, wkt_bytes, raw_build_bytes = bundle
        weight = self.build_cost_weight
        build_bytes = raw_build_bytes * weight
        if join.distribution == "partitioned" and self.cluster.num_nodes > 1:
            share = len(instances)
            try:
                probe_bytes = float(
                    self.metastore.table_bytes(plan.probe.table.name)
                )
            except Exception:
                probe_bytes = 0.0
            for instance in instances:
                instance.charge_serial(
                    Resource.SHUFFLE_BYTES, (build_bytes + probe_bytes) / share
                )
                instance.charge_serial(Resource.WKT_BYTES, wkt_bytes * weight / share)
        else:
            for instance in instances:
                if self.cluster.num_nodes > 1:
                    instance.charge_serial(Resource.BROADCAST_BYTES, build_bytes)
                instance.charge_serial(Resource.WKT_BYTES, wkt_bytes * weight)
        return index

    def _instance_pipeline(
        self,
        plan: PhysicalPlan,
        instance: InstanceContext,
        scan_ranges: list[tuple[int, int]],
        shared_index,
        residual_eval,
    ) -> ExecNode:
        probe_filter = self._compile_conjuncts(
            plan.probe.conjuncts, plan.probe.descriptor
        )
        scan = ScanNode(
            instance,
            self.hdfs,
            plan.probe.table,
            scan_ranges,
            row_filter=probe_filter,
            batch_size=self.batch_size,
        )
        root: ExecNode = scan
        if plan.join is not None:
            probe_slot = plan.probe.descriptor.resolve(plan.join.predicate.probe_column)
            if plan.join.indexed:
                from repro.core.isp import SpatialJoinNode

                root = SpatialJoinNode(
                    instance,
                    root,
                    shared_index,
                    probe_slot,
                    build_cost_weight=self.build_cost_weight,
                    batch_refine=self.batch_refine,
                    batch_size=self.batch_size,
                )
            else:
                # Naive fallback: Impala's single-core cross join + UDF filter.
                root = self._cross_join(plan, instance, root, shared_index)
        if residual_eval is not None:
            vector_residual = (
                vectorize_conjuncts(plan.residual, plan.row_descriptor)
                if self.batch_refine
                else None
            )
            root = FilterNode(
                instance, root, residual_eval, vector_predicate=vector_residual
            )
        return root

    def _cross_join(self, plan, instance, probe_node, shared_index) -> ExecNode:
        join = plan.join
        build_rows = [item[0] for item, _ in shared_index.tree.iter_all()]
        predicate = self._join_predicate_eval(plan)
        return CrossJoinNode(instance, probe_node, build_rows, residual=predicate)

    def _join_predicate_eval(self, plan: PhysicalPlan):
        """Compile the spatial predicate as a scalar over joined rows."""
        from repro.impala.ast_nodes import FunctionCall, Literal

        pred = plan.join.predicate
        args: list = [pred.probe_column, pred.build_column]
        if pred.function == "ST_NEARESTD":
            args.append(Literal(pred.radius))
        call = FunctionCall(pred.function, tuple(args))
        return compile_expr(call, plan.row_descriptor)

    # -- expression plumbing --------------------------------------------------------

    @staticmethod
    def _compile_conjuncts(conjuncts, descriptor) -> Callable | None:
        if not conjuncts:
            return None
        compiled = [compile_expr(c, descriptor) for c in conjuncts]
        if len(compiled) == 1:
            return compiled[0]

        def evaluate(row):
            for func in compiled:
                if func(row) is not True:
                    return False
            return True

        return evaluate

    def _new_aggregator(self, plan: PhysicalPlan, descriptor: TupleDescriptor):
        spec = plan.aggregate
        key_getters = [compile_expr(e, descriptor) for e in spec.key_exprs]
        agg_specs = []
        for name, arg, distinct in spec.functions:
            getter = compile_expr(arg, descriptor) if arg is not None else None
            agg_specs.append((name, getter, distinct))
        return Aggregator(key_getters, agg_specs)

    def _project_aggregate(self, plan: PhysicalPlan, rows: list[tuple]) -> list[tuple]:
        """Reorder (keys..., aggs...) rows into SELECT-list order."""
        from repro.impala.ast_nodes import FunctionCall

        spec = plan.aggregate
        layout: list[tuple[str, int]] = []
        key_cursor = 0
        agg_cursor = 0
        num_keys = len(spec.key_exprs)
        for item in plan.projection:
            expr = item.expr
            if isinstance(expr, FunctionCall) and expr.name in (
                "COUNT", "SUM", "MIN", "MAX", "AVG",
            ):
                layout.append(("agg", num_keys + agg_cursor))
                agg_cursor += 1
            else:
                layout.append(("key", key_cursor))
                key_cursor += 1
        return [tuple(row[idx] for _, idx in layout) for row in rows]

    def _order_and_limit_agg(self, plan: PhysicalPlan, rows: list[tuple]) -> list[tuple]:
        if plan.order_by:
            for item in reversed(plan.order_by):
                index = self._output_position(plan, item.expr)
                rows.sort(key=lambda r: _null_safe_key(r[index]), reverse=not item.ascending)
        if plan.limit is not None:
            rows = rows[: plan.limit]
        return rows

    def _compile_output_expr(self, plan: PhysicalPlan, expr):
        """Compile an expression over the *output* rows of an aggregation.

        Any subexpression matching a SELECT item (by structure) or an
        output alias collapses to a positional reference; the remainder
        must be literals and scalar operators.
        """
        from repro.impala.ast_nodes import BinaryOp, ColumnRef, Literal, UnaryOp

        for i, item in enumerate(plan.projection):
            if item.expr == expr:
                return lambda row, i=i: row[i]
        if isinstance(expr, ColumnRef) and expr.table is None:
            for i, name in enumerate(plan.output_names):
                if name == expr.column:
                    return lambda row, i=i: row[i]
        if isinstance(expr, Literal):
            return lambda row, value=expr.value: value
        if isinstance(expr, UnaryOp):
            operand = self._compile_output_expr(plan, expr.operand)
            if expr.op == "NOT":
                return lambda row: None if operand(row) is None else not operand(row)
            if expr.op == "-":
                return lambda row: None if operand(row) is None else -operand(row)
        if isinstance(expr, BinaryOp):
            left = self._compile_output_expr(plan, expr.left)
            right = self._compile_output_expr(plan, expr.right)
            from repro.impala.exprs import _sql_and, _sql_or

            ops = {
                "=": lambda a, b: a == b, "<>": lambda a, b: a != b,
                "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
                "+": lambda a, b: a + b, "-": lambda a, b: a - b,
                "*": lambda a, b: a * b, "/": lambda a, b: a / b,
            }
            if expr.op == "AND":
                return lambda row: _sql_and(left(row), right(row))
            if expr.op == "OR":
                return lambda row: _sql_or(left(row), right(row))
            if expr.op in ops:
                func = ops[expr.op]

                def evaluate(row, func=func, left=left, right=right):
                    a = left(row)
                    b = right(row)
                    if a is None or b is None:
                        return None
                    return func(a, b)

                return evaluate
        raise PlanError(
            f"HAVING/output expression {expr} must reference grouped output"
        )

    def _output_position(self, plan: PhysicalPlan, expr) -> int:
        from repro.impala.ast_nodes import ColumnRef

        if isinstance(expr, ColumnRef) and expr.table is None:
            for i, name in enumerate(plan.output_names):
                if name == expr.column:
                    return i
        for i, item in enumerate(plan.projection):
            if item.expr == expr:
                return i
        raise PlanError(f"ORDER BY {expr} does not match any output column")

    def _compile_projection(self, plan: PhysicalPlan, descriptor: TupleDescriptor):
        getters = [compile_expr(item.expr, descriptor) for item in plan.projection]

        def project(row):
            return tuple(g(row) for g in getters)

        return project


def _null_safe_key(value):
    """Sort NULLs last regardless of direction (Impala's default)."""
    return (value is None, value)
