"""Recursive-descent SQL parser for the Impala frontend.

Grammar (the ISP-MC dialect — standard single-block SELECT plus the
``SPATIAL JOIN`` keyword added in Section IV of the paper)::

    select    := SELECT item (',' item)*
                 FROM table_ref join*
                 [WHERE expr] [GROUP BY expr_list]
                 [ORDER BY order_list] [LIMIT n]
    join      := (SPATIAL | INNER)? JOIN table_ref [ON expr]
    item      := '*' | expr [AS? alias]
    expr      := or_expr with the usual precedence
    primary   := literal | column | func '(' args ')' | '(' expr ')'
"""

from __future__ import annotations

from repro.errors import SQLParseError
from repro.impala.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
    UnaryOp,
)
from repro.impala.lexer import Token, TokenType, tokenize

__all__ = ["parse"]

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG"}


def parse(sql: str) -> SelectStatement:
    """Parse one SELECT statement; raises :class:`SQLParseError`."""
    return _Parser(tokenize(sql)).parse_select()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.END:
            self._pos += 1
        return token

    def _accept_keyword(self, *keywords: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in keywords:
            return self._next()
        return None

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._next()
        if token.type is not TokenType.KEYWORD or token.value != keyword:
            raise SQLParseError(
                f"expected {keyword}, got {token.value!r}", token.position
            )
        return token

    def _accept_symbol(self, symbol: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.SYMBOL and token.value == symbol:
            return self._next()
        return None

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._next()
        if token.type is not TokenType.SYMBOL or token.value != symbol:
            raise SQLParseError(
                f"expected {symbol!r}, got {token.value!r}", token.position
            )
        return token

    def _expect_identifier(self) -> Token:
        token = self._next()
        if token.type is not TokenType.IDENTIFIER:
            raise SQLParseError(
                f"expected identifier, got {token.value!r}", token.position
            )
        return token

    # -- statement --------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        """Parse one (optionally EXPLAIN'd) SELECT statement."""
        explain = bool(self._accept_keyword("EXPLAIN"))
        self._expect_keyword("SELECT")
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())
        self._expect_keyword("FROM")
        from_table = self._table_ref()
        joins = []
        while True:
            spatial = self._accept_keyword("SPATIAL")
            if spatial:
                self._expect_keyword("JOIN")
            else:
                inner = self._accept_keyword("INNER")
                if not self._accept_keyword("JOIN"):
                    if inner:
                        raise SQLParseError(
                            "expected JOIN after INNER", self._peek().position
                        )
                    break
            table = self._table_ref()
            on = None
            if self._accept_keyword("ON"):
                on = self._expr()
            joins.append(JoinClause(table, spatial=bool(spatial), on=on))
        where = self._expr() if self._accept_keyword("WHERE") else None
        group_by: list = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expr())
            while self._accept_symbol(","):
                group_by.append(self._expr())
        having = self._expr() if self._accept_keyword("HAVING") else None
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_symbol(","):
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._next()
            if token.type is not TokenType.NUMBER:
                raise SQLParseError("LIMIT expects a number", token.position)
            limit = int(float(token.value))
        tail = self._next()
        if tail.type is not TokenType.END:
            raise SQLParseError(f"trailing input {tail.value!r}", tail.position)
        return SelectStatement(
            items, from_table, joins, where, group_by, having, order_by, limit,
            explain=explain,
        )

    def _order_item(self) -> OrderItem:
        expr = self._expr()
        if self._accept_keyword("DESC"):
            return OrderItem(expr, ascending=False)
        self._accept_keyword("ASC")
        return OrderItem(expr, ascending=True)

    def _select_item(self) -> SelectItem:
        if self._accept_symbol("*"):
            return SelectItem(Star())
        expr = self._expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier().value
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._next().value
        return SelectItem(expr, alias)

    def _table_ref(self) -> TableRef:
        name = self._expect_identifier().value
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier().value
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._next().value
        return TableRef(name, alias)

    # -- expressions (precedence climbing) ----------------------------------------

    def _expr(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self):
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.SYMBOL and token.value in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            op = self._next().value
            if op == "!=":
                op = "<>"
            return BinaryOp(op, left, self._additive())
        if token.type is TokenType.KEYWORD and token.value == "BETWEEN":
            self._next()
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return BinaryOp(
                "AND", BinaryOp(">=", left, low), BinaryOp("<=", left, high)
            )
        if token.type is TokenType.KEYWORD and token.value == "IS":
            self._next()
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            test = BinaryOp("IS NULL", left, Literal(None))
            return UnaryOp("NOT", test) if negated else test
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.SYMBOL and token.value in ("+", "-"):
                op = self._next().value
                left = BinaryOp(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            token = self._peek()
            if token.type is TokenType.SYMBOL and token.value in ("*", "/"):
                op = self._next().value
                left = BinaryOp(op, left, self._unary())
            else:
                return left

    def _unary(self):
        if self._accept_symbol("-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self):
        token = self._next()
        if token.type is TokenType.NUMBER:
            text = token.value
            value = float(text) if any(c in text for c in ".eE") else int(text)
            return Literal(value)
        if token.type is TokenType.STRING:
            return Literal(token.value)
        if token.type is TokenType.KEYWORD and token.value in ("TRUE", "FALSE"):
            return Literal(token.value == "TRUE")
        if token.type is TokenType.KEYWORD and token.value == "NULL":
            return Literal(None)
        if token.type is TokenType.SYMBOL and token.value == "(":
            inner = self._expr()
            self._expect_symbol(")")
            return inner
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATES:
            return self._function_call(token.value)
        if token.type is TokenType.IDENTIFIER:
            if self._peek().type is TokenType.SYMBOL and self._peek().value == "(":
                return self._function_call(token.value.upper())
            if self._accept_symbol("."):
                if self._accept_symbol("*"):
                    return Star(token.value)
                column = self._expect_identifier().value
                return ColumnRef(token.value, column)
            return ColumnRef(None, token.value)
        raise SQLParseError(f"unexpected token {token.value!r}", token.position)

    def _function_call(self, name: str) -> FunctionCall:
        self._expect_symbol("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        args: list = []
        if self._accept_symbol(")"):
            return FunctionCall(name, tuple(args), distinct)
        if self._accept_symbol("*"):
            args.append(Star())
        else:
            args.append(self._expr())
        while self._accept_symbol(","):
            args.append(self._expr())
        self._expect_symbol(")")
        return FunctionCall(name, tuple(args), distinct)
