"""Backend execution nodes: scan, filter, cross join, aggregation.

Each node pulls :class:`~repro.impala.rowbatch.RowBatch` objects from its
child, the pull-based asynchronous-ish execution style of Impala's
backend.  Nodes are instantiated *per fragment instance* (per node) by the
coordinator, and charge their work to the instance's
:class:`InstanceContext` so static scheduling effects are visible in the
simulated makespan.

The indexed ``SpatialJoinNode`` — the paper's contribution — lives in
:mod:`repro.core.isp` and subclasses :class:`BlockingJoinNode` from here,
mirroring how ISP-MC subclasses Impala's ``BlockingJoinNode``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.cluster.metrics import TaskMetrics
from repro.cluster.model import CostModel, Resource
from repro.cluster.simulation import simulate_static_chunked
from repro.errors import ImpalaError
from repro.hdfs import SimulatedHDFS, read_split_lines
from repro.impala.catalog import Table
from repro.impala.rowbatch import BATCH_SIZE, RowBatch, batches_of
from repro.obs.registry import REGISTRY

__all__ = [
    "InstanceContext",
    "ExecNode",
    "ScanNode",
    "FilterNode",
    "BlockingJoinNode",
    "CrossJoinNode",
    "Aggregator",
]


@dataclass
class InstanceContext:
    """Per-fragment-instance accounting (one instance per worker node).

    ``serial_seconds`` accrues single-threaded phases (index build, result
    exchange); ``parallel_seconds`` accrues phases parallelised across the
    node's cores with OpenMP *static* chunking — the intra-node scheduling
    the paper was forced into by GEOS thread-safety and LLVM-JIT issues
    (Section V.B), and the source of intra-node imbalance.
    """

    node_id: int
    cores: int
    cost_model: CostModel
    metrics: TaskMetrics = field(default_factory=TaskMetrics)
    serial_seconds: float = 0.0
    parallel_seconds: float = 0.0
    row_batches: int = 0

    def charge_serial(self, resource: str, units: float) -> None:
        """Accrue single-threaded work."""
        self.metrics.add(resource, units)
        self.serial_seconds += self.cost_model.task_seconds({resource: units})

    def charge_parallel(self, resource: str, units: float) -> None:
        """Accrue work spread evenly across the node's cores.

        Used for Impala's multi-threaded scanners ("multi-threaded disk
        I/Os", Section VI), which keep all cores busy with no chunking
        imbalance.
        """
        self.metrics.add(resource, units)
        self.parallel_seconds += (
            self.cost_model.task_seconds({resource: units}) / self.cores
        )

    def charge_batch(self, per_row_units: list[dict[str, float]]) -> None:
        """Accrue one row batch processed by statically-chunked threads.

        ``per_row_units`` carries each row's resource counts; the batch's
        duration is the makespan of those rows under OpenMP static
        chunking across the node's cores.
        """
        self.row_batches += 1
        self.metrics.add(Resource.ROW_BATCHES, 1)
        self.serial_seconds += self.cost_model.impala_batch_overhead
        if per_row_units:
            per_row_seconds = []
            for units in per_row_units:
                for resource, amount in units.items():
                    self.metrics.add(resource, amount)
                per_row_seconds.append(self.cost_model.task_seconds(units))
            self.parallel_seconds += simulate_static_chunked(
                per_row_seconds, self.cores
            )

    @property
    def total_seconds(self) -> float:
        """The instance's simulated execution time."""
        return self.serial_seconds + self.parallel_seconds


class ExecNode:
    """Base class: an iterator of row batches."""

    def batches(self) -> Iterator[RowBatch]:
        """Yield this operator's output row batches."""
        raise NotImplementedError

    def rows(self) -> Iterator[tuple]:
        """Convenience: flatten batches into rows."""
        for batch in self.batches():
            yield from batch


class ScanNode(ExecNode):
    """HDFS text scan over this instance's statically assigned ranges.

    Impala assigns scan ranges to backends at plan time; the ranges this
    node receives are the instance's share and never migrate.  Bad rows
    (wrong arity / unparsable numerics) are skipped, like Impala's text
    scanners — and like the ``Try(...)`` filter in the paper's Fig 2.
    """

    def __init__(
        self,
        ctx: InstanceContext,
        hdfs: SimulatedHDFS,
        table: Table,
        scan_ranges: list[tuple[int, int]],
        row_filter: Callable[[tuple], object] | None = None,
        batch_size: int = BATCH_SIZE,
    ):
        if batch_size < 1:
            raise ImpalaError(f"batch_size must be positive, got {batch_size}")
        self.ctx = ctx
        self.hdfs = hdfs
        self.table = table
        self.scan_ranges = scan_ranges
        self.row_filter = row_filter
        self.batch_size = batch_size
        self.rows_skipped = 0

    def batches(self) -> Iterator[RowBatch]:
        batch = RowBatch(capacity=self.batch_size)
        rows_out = 0
        REGISTRY.inc("impala.scan_ranges", len(self.scan_ranges))
        for offset, length in self.scan_ranges:
            self.ctx.charge_parallel(Resource.HDFS_BYTES, length)
            for line in read_split_lines(self.hdfs, self.table.path, offset, length):
                row = self.table.parse_row(line)
                if row is None:
                    self.rows_skipped += 1
                    continue
                if self.row_filter is not None and not self.row_filter(row):
                    continue
                batch.add(row)
                rows_out += 1
                if batch.is_full:
                    yield batch
                    batch = RowBatch(capacity=self.batch_size)
        if len(batch):
            yield batch
        REGISTRY.inc("impala.rows_scanned", rows_out)
        REGISTRY.inc("impala.rows_skipped", self.rows_skipped)


class FilterNode(ExecNode):
    """Applies a compiled predicate to the child's rows (SQL semantics:
    NULL is not a match).

    When ``vector_predicate`` is supplied it is handed the batch's column
    lists and may return a boolean mask covering every row; returning
    ``None`` (e.g. for types it cannot vectorize) falls back to the
    row-at-a-time predicate.  Both paths keep identical rows and charge
    identical (zero) time, so plans produce the same simulated runtimes.
    """

    def __init__(
        self,
        ctx: InstanceContext,
        child: ExecNode,
        predicate,
        vector_predicate: Callable[[list[list]], object] | None = None,
    ):
        self.ctx = ctx
        self.child = child
        self.predicate = predicate
        self.vector_predicate = vector_predicate

    def batches(self) -> Iterator[RowBatch]:
        predicate = self.predicate
        vector_predicate = self.vector_predicate
        for batch in self.child.batches():
            mask = None
            if vector_predicate is not None and len(batch):
                mask = vector_predicate(batch.columns())
            if mask is not None:
                kept = [row for row, keep in zip(batch.rows, mask) if keep]
            else:
                kept = [row for row in batch if predicate(row) is True]
            if kept:
                yield RowBatch(kept, capacity=batch.capacity)


class BlockingJoinNode(ExecNode):
    """A join that fully consumes (blocks on) its build side first.

    Subclasses implement :meth:`build` (consume build rows into an
    internal structure) and :meth:`probe_batch` (emit joined rows for one
    probe batch).  Execution order mirrors Impala: build completes before
    the first probe batch is pulled.
    """

    def __init__(
        self,
        ctx: InstanceContext,
        probe: ExecNode,
        build_rows: list[tuple],
        batch_size: int = BATCH_SIZE,
    ):
        if batch_size < 1:
            raise ImpalaError(f"batch_size must be positive, got {batch_size}")
        self.ctx = ctx
        self.probe = probe
        self.build_rows = build_rows
        self.batch_size = batch_size
        self._built = False

    def build(self) -> None:
        """Consume the build side into the join's internal structure."""
        raise NotImplementedError

    def probe_batch(self, batch: RowBatch) -> list[tuple]:
        """Emit joined rows for one probe batch."""
        raise NotImplementedError

    def batches(self) -> Iterator[RowBatch]:
        if not self._built:
            self.build()
            self._built = True
        for batch in self.probe.batches():
            joined = self.probe_batch(batch)
            yield from batches_of(joined, self.batch_size)


class CrossJoinNode(BlockingJoinNode):
    """Naive nested-loop join with an optional residual predicate.

    This is Impala's stock fallback the paper criticises: every probe row
    pairs with every build row, and — matching the observation that
    Impala's cross join "can only use a single CPU core per instance" —
    the work is charged serially, not to the multi-core batch path.
    """

    def __init__(
        self,
        ctx: InstanceContext,
        probe: ExecNode,
        build_rows: list[tuple],
        residual: Callable[[tuple], object] | None = None,
    ):
        super().__init__(ctx, probe, build_rows)
        self.residual = residual

    def build(self) -> None:
        # Nothing to index: the build side is kept as a plain row list.
        self.ctx.charge_serial(Resource.ROWS_OUT, 0)

    def probe_batch(self, batch: RowBatch) -> list[tuple]:
        joined: list[tuple] = []
        residual = self.residual
        for left_row in batch:
            for right_row in self.build_rows:
                row = left_row + right_row
                if residual is None or residual(row) is True:
                    joined.append(row)
        # Single-core execution: all pairing work lands on serial time.
        self.ctx.charge_serial(
            Resource.ROWS_OUT, len(batch) * len(self.build_rows) * 0.05 + len(joined)
        )
        self.ctx.metrics.add(Resource.ROW_BATCHES, 1)
        return joined


class Aggregator:
    """Hash aggregation supporting partial/merge/final phases.

    ``specs`` is a list of (func_name, value_getter_or_None, distinct)
    triples; group keys are computed by ``key_getters``.  Partial states:
    COUNT -> int, SUM -> number, MIN/MAX -> value, AVG -> (sum, count),
    COUNT DISTINCT -> set.
    """

    def __init__(self, key_getters, specs):
        self.key_getters = key_getters
        self.specs = specs
        self.groups: dict[tuple, list] = {}

    def _new_states(self) -> list:
        states = []
        for name, _, distinct in self.specs:
            if name == "COUNT" and distinct:
                states.append(set())
            elif name == "COUNT":
                states.append(0)
            elif name == "AVG":
                states.append((0.0, 0))
            else:
                states.append(None)  # SUM/MIN/MAX start empty
        return states

    def accumulate(self, row: tuple) -> None:
        """Fold one input row into its group's states."""
        key = tuple(getter(row) for getter in self.key_getters)
        states = self.groups.get(key)
        if states is None:
            states = self._new_states()
            self.groups[key] = states
        for i, (name, getter, distinct) in enumerate(self.specs):
            value = getter(row) if getter is not None else 1
            if name == "COUNT":
                if distinct:
                    if value is not None:
                        states[i].add(value)
                elif getter is None or value is not None:
                    states[i] += 1
            elif value is None:
                continue
            elif name == "SUM":
                states[i] = value if states[i] is None else states[i] + value
            elif name == "MIN":
                states[i] = value if states[i] is None else min(states[i], value)
            elif name == "MAX":
                states[i] = value if states[i] is None else max(states[i], value)
            elif name == "AVG":
                total, count = states[i]
                states[i] = (total + value, count + 1)
            else:
                raise ImpalaError(f"unknown aggregate {name!r}")

    def merge(self, key: tuple, states: list) -> None:
        """Fold another aggregator's partial states (the merge phase)."""
        mine = self.groups.get(key)
        if mine is None:
            self.groups[key] = list(states)
            return
        for i, (name, _, distinct) in enumerate(self.specs):
            theirs = states[i]
            if name == "COUNT" and distinct:
                mine[i] |= theirs
            elif name == "COUNT":
                mine[i] += theirs
            elif theirs is None:
                continue
            elif name == "SUM":
                mine[i] = theirs if mine[i] is None else mine[i] + theirs
            elif name == "MIN":
                mine[i] = theirs if mine[i] is None else min(mine[i], theirs)
            elif name == "MAX":
                mine[i] = theirs if mine[i] is None else max(mine[i], theirs)
            elif name == "AVG":
                total, count = mine[i]
                mine[i] = (total + theirs[0], count + theirs[1])

    def partials(self) -> Iterator[tuple[tuple, list]]:
        """Yield (group_key, states) pairs for the exchange."""
        yield from self.groups.items()

    def finalize(self) -> Iterator[tuple]:
        """Yield final output rows: group key values then aggregate values."""
        for key, states in self.groups.items():
            values = []
            for i, (name, _, distinct) in enumerate(self.specs):
                state = states[i]
                if name == "COUNT" and distinct:
                    values.append(len(state))
                elif name == "AVG":
                    total, count = state
                    values.append(total / count if count else None)
                else:
                    values.append(state)
            yield key + tuple(values)
