"""Frontend planning: AST -> physical plan description.

Mirrors Impala's two-step frontend (Section IV of the paper): the parsed
statement is analysed against the metastore into a logical shape, then
turned into a *physical plan* — a plain-data description the coordinator
instantiates as exec-node trees, one fragment instance per backend node.
The plan is fixed before execution starts and never changes afterwards
("No changes on the plan are made after the plan starts to execute"),
which is precisely the static-scheduling behaviour the benchmarks probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.impala.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expr,
    FunctionCall,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
)
from repro.impala.catalog import Metastore, Table
from repro.impala.exprs import Slot, TupleDescriptor
from repro.impala.udf import JOIN_PREDICATES

__all__ = [
    "ScanSpec",
    "SpatialPredicate",
    "JoinSpec",
    "AggregateSpec",
    "PhysicalPlan",
    "Planner",
]


@dataclass
class ScanSpec:
    """One table scan: the table, its exposed alias and pushed-down filters."""

    table: Table
    exposed_name: str
    conjuncts: list[Expr] = field(default_factory=list)

    @property
    def descriptor(self) -> TupleDescriptor:
        """Tuple descriptor for this scan's output rows."""
        return TupleDescriptor(
            [Slot(self.exposed_name, c.name) for c in self.table.columns]
        )


@dataclass
class SpatialPredicate:
    """The join predicate: which ST_ function over which geometry columns.

    ``probe_column``/``build_column`` are resolved against the probe (left)
    and build (right) scan descriptors; ``radius`` is the D of NearestD.
    ``flipped`` records that the SQL listed the build geometry first
    (e.g. ``ST_WITHIN(poly.geom, pnt.geom)`` is rejected, but
    ``ST_CONTAINS(poly.geom, pnt.geom)`` normalises to a flipped WITHIN).
    """

    function: str
    probe_column: ColumnRef
    build_column: ColumnRef
    radius: float = 0.0


@dataclass
class JoinSpec:
    """A spatial join: build-side scan plus the predicate.

    ``indexed`` is True for ``SPATIAL JOIN`` (the paper's R-tree path) and
    False for the naive cross-join fallback used when a plain ``JOIN``
    carries a spatial predicate.  ``distribution`` records the planner's
    stats-driven choice of how the build side reaches the instances:
    ``"broadcast"`` replicates it to every node (the paper's only mode),
    ``"partitioned"`` ships each side across the network once.  Fragment
    binding stays static either way — the choice is made before execution
    and never revisited.
    """

    build: ScanSpec
    predicate: SpatialPredicate
    indexed: bool
    residual: list[Expr] = field(default_factory=list)
    distribution: str = "broadcast"


@dataclass
class AggregateSpec:
    """Aggregation output = group keys then aggregate values, in the order
    the SELECT list names them."""

    key_exprs: list[Expr]
    # (func_name, value_expr_or_None_for_COUNT(*), distinct)
    functions: list[tuple[str, Expr | None, bool]]
    output_names: list[str]


@dataclass
class PhysicalPlan:
    """Everything the coordinator needs to execute a query."""

    statement: SelectStatement
    probe: ScanSpec
    join: JoinSpec | None
    residual: list[Expr]
    aggregate: AggregateSpec | None
    projection: list[SelectItem]
    output_names: list[str]
    order_by: list[OrderItem]
    limit: int | None
    having: Expr | None = None
    explain: bool = False

    @property
    def row_descriptor(self) -> TupleDescriptor:
        """Descriptor of rows flowing out of the (optional) join."""
        if self.join is None:
            return self.probe.descriptor
        return self.probe.descriptor.concat(self.join.build.descriptor)


class Planner:
    """Builds physical plans from parsed statements and the metastore.

    ``num_nodes`` enables the stats-driven broadcast-vs-partitioned
    choice for spatial joins (Impala's DistributedPlanner rule applied to
    metastore file sizes); the default of 1 keeps every join broadcast,
    the paper's original behaviour.
    """

    def __init__(self, metastore: Metastore, num_nodes: int = 1):
        self._metastore = metastore
        self._num_nodes = max(1, num_nodes)

    def plan(self, statement: SelectStatement) -> PhysicalPlan:
        """Analyse and plan one SELECT; raises :class:`PlanError`."""
        probe = ScanSpec(
            self._metastore.get(statement.from_table.name),
            statement.from_table.exposed_name,
        )
        if len(statement.joins) > 1:
            raise PlanError("at most one join is supported")
        join_clause = statement.joins[0] if statement.joins else None
        build = None
        if join_clause is not None:
            build = ScanSpec(
                self._metastore.get(join_clause.table.name),
                join_clause.table.exposed_name,
            )
            if build.exposed_name == probe.exposed_name:
                raise PlanError(
                    f"duplicate table name {build.exposed_name!r}; use aliases"
                )
        conjuncts = []
        if statement.where is not None:
            conjuncts.extend(_split_conjuncts(statement.where))
        if join_clause is not None and join_clause.on is not None:
            conjuncts.extend(_split_conjuncts(join_clause.on))
        join_spec, residual = self._classify(probe, build, join_clause, conjuncts)
        aggregate, projection, output_names = self._analyse_select_list(
            statement, probe, build
        )
        if statement.having is not None and aggregate is None:
            raise PlanError("HAVING requires aggregation")
        return PhysicalPlan(
            statement=statement,
            probe=probe,
            join=join_spec,
            residual=residual,
            aggregate=aggregate,
            projection=projection,
            output_names=output_names,
            order_by=statement.order_by,
            limit=statement.limit,
            having=statement.having,
            explain=statement.explain,
        )

    # -- conjunct classification ------------------------------------------------

    def _classify(
        self,
        probe: ScanSpec,
        build: ScanSpec | None,
        join_clause: JoinClause | None,
        conjuncts: list[Expr],
    ) -> tuple[JoinSpec | None, list[Expr]]:
        spatial_pred: SpatialPredicate | None = None
        residual: list[Expr] = []
        for conjunct in conjuncts:
            tables = self._tables_of(conjunct, probe, build)
            if tables <= {probe.exposed_name}:
                probe.conjuncts.append(conjunct)
                continue
            if build is not None and tables <= {build.exposed_name}:
                build.conjuncts.append(conjunct)
                continue
            candidate = self._as_spatial_predicate(conjunct, probe, build)
            if candidate is not None and spatial_pred is None:
                spatial_pred = candidate
            else:
                residual.append(conjunct)
        if join_clause is None:
            if spatial_pred is not None:
                raise PlanError(
                    "spatial predicate references two tables but no JOIN was given"
                )
            return None, residual
        if spatial_pred is None:
            raise PlanError(
                "a JOIN needs a spatial predicate "
                "(ST_WITHIN/ST_NEARESTD/ST_INTERSECTS over both tables)"
            )
        return (
            JoinSpec(
                build=build,
                predicate=spatial_pred,
                indexed=join_clause.spatial,
                residual=[],
                distribution=self._choose_distribution(probe, build),
            ),
            residual,
        )

    def _choose_distribution(self, probe: ScanSpec, build: ScanSpec) -> str:
        """Broadcast vs partitioned, by total network bytes.

        Impala's DistributedPlanner rule: broadcasting ships the build
        side to every node (``build_bytes x N``); partitioning ships each
        side across the network once (``build_bytes + probe_bytes``).
        Pick whichever moves fewer bytes.  On one node (or when the
        metastore can't size a table) there is nothing to ship — stay
        broadcast, the paper's static ISP-MC layout.
        """
        if self._num_nodes <= 1:
            return "broadcast"
        try:
            build_bytes = self._metastore.table_bytes(build.table.name)
            probe_bytes = self._metastore.table_bytes(probe.table.name)
        except Exception:
            return "broadcast"
        if build_bytes * self._num_nodes > build_bytes + probe_bytes:
            return "partitioned"
        return "broadcast"

    def _tables_of(
        self, expr: Expr, probe: ScanSpec, build: ScanSpec | None
    ) -> set[str]:
        tables: set[str] = set()
        for ref in expr.columns():
            tables.add(self._resolve_table(ref, probe, build))
        return tables

    def _resolve_table(
        self, ref: ColumnRef, probe: ScanSpec, build: ScanSpec | None
    ) -> str:
        if ref.table is not None:
            for scan in filter(None, (probe, build)):
                if scan.exposed_name == ref.table:
                    if not scan.table.has_column(ref.column):
                        raise PlanError(
                            f"table {ref.table!r} has no column {ref.column!r}"
                        )
                    return scan.exposed_name
            raise PlanError(f"unknown table {ref.table!r}")
        owners = [
            scan.exposed_name
            for scan in filter(None, (probe, build))
            if scan.table.has_column(ref.column)
        ]
        if not owners:
            raise PlanError(f"unknown column {ref.column!r}")
        if len(owners) > 1:
            raise PlanError(f"ambiguous column {ref.column!r}")
        return owners[0]

    def _as_spatial_predicate(
        self, conjunct: Expr, probe: ScanSpec, build: ScanSpec | None
    ) -> SpatialPredicate | None:
        if build is None or not isinstance(conjunct, FunctionCall):
            return None
        name = conjunct.name.upper()
        if name not in JOIN_PREDICATES:
            return None
        if len(conjunct.args) < 2 or not all(
            isinstance(arg, ColumnRef) for arg in conjunct.args[:2]
        ):
            return None
        first, second = conjunct.args[0], conjunct.args[1]
        first_table = self._resolve_table(first, probe, build)
        second_table = self._resolve_table(second, probe, build)
        if {first_table, second_table} != {probe.exposed_name, build.exposed_name}:
            return None
        radius = 0.0
        if name == "ST_NEARESTD":
            if len(conjunct.args) != 3:
                raise PlanError("ST_NEARESTD takes (geom, geom, distance)")
            from repro.impala.ast_nodes import Literal

            distance_arg = conjunct.args[2]
            if not isinstance(distance_arg, Literal) or not isinstance(
                distance_arg.value, (int, float)
            ):
                raise PlanError("ST_NEARESTD distance must be a numeric literal")
            radius = float(distance_arg.value)
        if name == "ST_CONTAINS":
            # ST_CONTAINS(build_geom, probe_geom) == ST_WITHIN(probe, build).
            if first_table != build.exposed_name:
                raise PlanError(
                    "ST_CONTAINS in a join must list the containing (build) "
                    "geometry first"
                )
            return SpatialPredicate("ST_WITHIN", second, first, radius)
        if first_table != probe.exposed_name:
            raise PlanError(
                f"{name} in a join must list the probe-side (left) geometry first"
            )
        return SpatialPredicate(name, first, second, radius)

    # -- SELECT list analysis ----------------------------------------------------

    def _analyse_select_list(
        self,
        statement: SelectStatement,
        probe: ScanSpec,
        build: ScanSpec | None,
    ) -> tuple[AggregateSpec | None, list[SelectItem], list[str]]:
        items = self._expand_stars(statement.select_items, probe, build)
        # Analysis-time validation: every referenced column must resolve
        # unambiguously against the FROM/JOIN tables.
        for item in items:
            for ref in item.expr.columns():
                self._resolve_table(ref, probe, build)
        has_aggregate = any(_contains_aggregate(item.expr) for item in items)
        output_names = [
            item.alias or _default_name(item.expr, i)
            for i, item in enumerate(items)
        ]
        if not has_aggregate:
            if statement.group_by:
                raise PlanError("GROUP BY requires an aggregate in the SELECT list")
            return None, items, output_names
        group_keys = list(statement.group_by)
        key_exprs: list[Expr] = []
        functions: list[tuple[str, Expr | None, bool]] = []
        ordered_names: list[str] = []
        for item, name in zip(items, output_names):
            expr = item.expr
            if isinstance(expr, FunctionCall) and expr.name in _AGG_NAMES:
                arg: Expr | None
                if len(expr.args) == 1 and isinstance(expr.args[0], Star):
                    if expr.name != "COUNT":
                        raise PlanError(f"{expr.name}(*) is not valid")
                    arg = None
                elif len(expr.args) == 1:
                    arg = expr.args[0]
                else:
                    raise PlanError(f"{expr.name} takes exactly one argument")
                functions.append((expr.name, arg, expr.distinct))
            else:
                if not any(expr == key for key in group_keys):
                    raise PlanError(
                        f"non-aggregate SELECT item {expr} must appear in GROUP BY"
                    )
                key_exprs.append(expr)
            ordered_names.append(name)
        for key in group_keys:
            if not any(key == e for e in key_exprs):
                raise PlanError(f"GROUP BY key {key} must appear in the SELECT list")
        spec = AggregateSpec(key_exprs, functions, ordered_names)
        return spec, items, output_names

    def _expand_stars(
        self, items: list[SelectItem], probe: ScanSpec, build: ScanSpec | None
    ) -> list[SelectItem]:
        expanded: list[SelectItem] = []
        for item in items:
            expr = item.expr
            if not isinstance(expr, Star):
                expanded.append(item)
                continue
            if expr.table is None:
                scans = [s for s in (probe, build) if s is not None]
            elif expr.table == probe.exposed_name:
                scans = [probe]
            elif build is not None and expr.table == build.exposed_name:
                scans = [build]
            else:
                raise PlanError(f"unknown table {expr.table!r} in *")
            for scan in scans:
                for column in scan.table.columns:
                    expanded.append(
                        SelectItem(ColumnRef(scan.exposed_name, column.name))
                    )
        return expanded


_AGG_NAMES = {"COUNT", "SUM", "MIN", "MAX", "AVG"}


def _contains_aggregate(expr: Expr) -> bool:
    if isinstance(expr, FunctionCall):
        if expr.name in _AGG_NAMES:
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    return False


def _split_conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _default_name(expr: Expr, index: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column
    if isinstance(expr, FunctionCall):
        return expr.name.lower()
    return f"_c{index}"
