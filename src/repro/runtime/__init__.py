"""Shared executor-pool runtime used by both substrates.

See :mod:`repro.runtime.pool` for the :class:`TaskPool` abstraction and
its serial / multiprocessing backends, :mod:`repro.runtime.shipping` for
the observability capture protocol that keeps pooled runs byte-identical
to serial ones, :mod:`repro.runtime.config` for the unified
:class:`RuntimeConfig` knob surface, and :mod:`repro.runtime.faults` /
:mod:`repro.runtime.recovery` for deterministic fault injection and the
retry / speculation / blacklisting machinery that survives it.
"""

from repro.runtime.config import RuntimeConfig
from repro.runtime.faults import (
    DEFAULT_KINDS,
    FAULT_KINDS,
    Fault,
    FaultEscalation,
    FaultPlan,
    FatalFault,
    InjectedFaultError,
    ShuffleLost,
    TaskHang,
    TransientFault,
    WorkerCrash,
)
from repro.runtime.pool import (
    PoolError,
    ProcessBackend,
    SerialBackend,
    TaskPool,
    get_payload,
    make_pool,
    validate_executors,
)
from repro.runtime.recovery import (
    Outcome,
    RecoveryContext,
    resolve_faults,
    run_recovered,
)
from repro.runtime.shipping import ObsCapture, apply_capture, capture_observability

__all__ = [
    "PoolError",
    "ProcessBackend",
    "SerialBackend",
    "TaskPool",
    "get_payload",
    "make_pool",
    "validate_executors",
    "ObsCapture",
    "apply_capture",
    "capture_observability",
    "RuntimeConfig",
    "FaultPlan",
    "Fault",
    "FAULT_KINDS",
    "DEFAULT_KINDS",
    "InjectedFaultError",
    "TransientFault",
    "FatalFault",
    "WorkerCrash",
    "TaskHang",
    "ShuffleLost",
    "FaultEscalation",
    "Outcome",
    "RecoveryContext",
    "resolve_faults",
    "run_recovered",
]
