"""Shared executor-pool runtime used by both substrates.

See :mod:`repro.runtime.pool` for the :class:`TaskPool` abstraction and
its serial / multiprocessing backends, and :mod:`repro.runtime.shipping`
for the observability capture protocol that keeps pooled runs
byte-identical to serial ones.
"""

from repro.runtime.pool import (
    PoolError,
    ProcessBackend,
    SerialBackend,
    TaskPool,
    get_payload,
    make_pool,
    validate_executors,
)
from repro.runtime.shipping import ObsCapture, apply_capture, capture_observability

__all__ = [
    "PoolError",
    "ProcessBackend",
    "SerialBackend",
    "TaskPool",
    "get_payload",
    "make_pool",
    "validate_executors",
    "ObsCapture",
    "apply_capture",
    "capture_observability",
]
