"""Seeded, deterministic fault injection for the execution runtime.

Real clouds lose workers, straggle and time out; the paper's
dynamic-vs-static scheduling argument is really an argument about who
recovers well from exactly that.  :class:`FaultPlan` is the reproduction's
chaos harness: a pure function from a task's *logical identity* —
``(seed, scope, task index, round)`` — to an injected :class:`Fault` (or
``None``).  Nothing about physical placement enters the draw, so the same
plan produces the same faults under ``executors="serial"``, 2 workers or
4, which is what lets ``bench chaos`` assert that every seeded-fault run
is byte-identical to the fault-free run.

``round`` is the retry dimension: the task attempt number on the Spark
side, the query restart number on the Impala side.  By default a plan
only injects while ``round < max_rounds`` (1), so a retried attempt or a
restarted query runs clean and recovery is guaranteed within the
configured budgets.  Raise ``max_rounds`` to exercise repeated failures
(blacklisting, restart-budget exhaustion).

Faults are injected **driver-side, pre-dispatch**: the recovery layer
(:mod:`repro.runtime.recovery`) consults the plan before a task attempt
is handed to the :class:`~repro.runtime.pool.TaskPool`, so an injected
crash never executes the task body and charges neither counters nor
simulated seconds — the retried attempt reproduces the fault-free
metrics exactly.  Only ``slow`` faults dispatch normally, carrying a
slowdown factor that the speculation logic sees.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = [
    "FAULT_KINDS",
    "DEFAULT_KINDS",
    "Fault",
    "FaultPlan",
    "InjectedFaultError",
    "TransientFault",
    "FatalFault",
    "WorkerCrash",
    "TaskHang",
    "ShuffleLost",
    "FaultEscalation",
    "make_fault_error",
]

# Every fault class the plan can draw.  ``fatal`` and ``shuffle_loss``
# are opt-in (fatal aborts the query by design; shuffle loss is only
# repairable where lineage exists), the rest are recoverable anywhere.
FAULT_KINDS = (
    "transient",
    "crash",
    "slow",
    "hang",
    "heartbeat_loss",
    "fatal",
    "shuffle_loss",
)

DEFAULT_KINDS = ("transient", "crash", "slow", "hang", "heartbeat_loss")


@dataclass(frozen=True)
class Fault:
    """One injected fault: what happens, how bad, and whose fault it is.

    ``worker`` is a *virtual* worker id assigned by the plan (not a
    physical pool worker — those differ run to run).  Blacklisting
    counts failures against virtual workers so the decision is
    deterministic across executor counts.
    """

    kind: str
    factor: float = 1.0  # slowdown multiplier, meaningful for kind="slow"
    worker: int = 0


class InjectedFaultError(ReproError):
    """Base class for errors raised on behalf of an injected fault."""

    def __init__(self, message: str, fault: Fault, scope: str, task: int):
        super().__init__(message)
        self.fault = fault
        self.scope = scope
        self.task = task


class TransientFault(InjectedFaultError):
    """A retriable one-off failure (lost RPC, evicted container)."""


class FatalFault(InjectedFaultError):
    """A non-retriable failure: the attempt's error is final."""


class WorkerCrash(InjectedFaultError):
    """The (virtual) worker running the attempt died."""


class TaskHang(InjectedFaultError):
    """The attempt exceeded the per-task timeout and was declared hung."""


class ShuffleLost(InjectedFaultError):
    """A shuffle block the attempt needed is gone (storage loss)."""


class FaultEscalation(InjectedFaultError):
    """Recovery budget exhausted: every allowed attempt was faulted."""

    def __init__(self, fault: Fault, scope: str, task: int, attempts: int):
        super().__init__(
            f"{scope}: task {task} failed {attempts} attempt(s) "
            f"(last injected fault: {fault.kind})",
            fault,
            scope,
            task,
        )
        self.attempts = attempts


_ERROR_BY_KIND = {
    "transient": TransientFault,
    "fatal": FatalFault,
    "crash": WorkerCrash,
    "heartbeat_loss": WorkerCrash,
    "hang": TaskHang,
    "shuffle_loss": ShuffleLost,
}


def make_fault_error(
    fault: Fault, scope: str, task: int, round: int
) -> InjectedFaultError:
    """The exception an injected ``fault`` surfaces as."""
    cls = _ERROR_BY_KIND.get(fault.kind, TransientFault)
    return cls(
        f"injected {fault.kind} fault: {scope} task {task} "
        f"round {round} (virtual worker {fault.worker})",
        fault,
        scope,
        task,
    )


class FaultPlan:
    """A seeded schedule of injected faults, keyed on logical identity.

    ``fault_for(scope, task, round)`` is deterministic and placement-free:
    the draw is seeded from a SHA-256 of ``(seed, scope, task, round)``
    (``random.Random`` seeded with a string is itself stable, but the
    hash keeps the derivation explicit and collision-resistant across
    scopes).  ``fault_rate`` is the per-attempt injection probability;
    ``kinds`` the drawable fault classes; ``slow_factor`` the slowdown
    carried by ``slow`` faults; ``virtual_workers`` the size of the
    virtual cluster faults are attributed to; ``max_rounds`` caps which
    rounds may fault at all (see module docstring).

    Explicit, test-targeted faults override the random draw::

        plan = FaultPlan(seed=7).at("job-1:stage-0", task=2, kind="crash")

    ``scope="*"`` matches any scope.  Explicit rules fire regardless of
    ``fault_rate`` and ``max_rounds``.
    """

    def __init__(
        self,
        seed: int = 0,
        fault_rate: float = 0.0,
        kinds: tuple = DEFAULT_KINDS,
        slow_factor: float = 4.0,
        virtual_workers: int = 4,
        max_rounds: int = 1,
    ):
        if not 0.0 <= float(fault_rate) <= 1.0:
            raise ReproError(f"fault_rate must be in [0, 1], got {fault_rate!r}")
        kinds = tuple(kinds)
        unknown = [k for k in kinds if k not in FAULT_KINDS]
        if unknown:
            raise ReproError(
                f"unknown fault kind(s) {unknown!r}; known: {FAULT_KINDS}"
            )
        if slow_factor < 1.0:
            raise ReproError(f"slow_factor must be >= 1, got {slow_factor!r}")
        if virtual_workers < 1:
            raise ReproError(
                f"virtual_workers must be >= 1, got {virtual_workers!r}"
            )
        if max_rounds < 0:
            raise ReproError(f"max_rounds must be >= 0, got {max_rounds!r}")
        self.seed = int(seed)
        self.fault_rate = float(fault_rate)
        self.kinds = kinds
        self.slow_factor = float(slow_factor)
        self.virtual_workers = int(virtual_workers)
        self.max_rounds = int(max_rounds)
        self._explicit: dict[tuple, Fault] = {}

    # -- authoring ---------------------------------------------------------------

    def at(
        self,
        scope: str,
        task: int,
        kind: str,
        round: int = 0,
        factor: float | None = None,
        worker: int | None = None,
    ) -> "FaultPlan":
        """Pin an explicit fault at ``(scope, task, round)``; chainable."""
        if kind not in FAULT_KINDS:
            raise ReproError(f"unknown fault kind {kind!r}; known: {FAULT_KINDS}")
        if factor is None:
            factor = self.slow_factor if kind == "slow" else 1.0
        if worker is None:
            worker = self._rng(scope, task, round, salt="worker").randrange(
                self.virtual_workers
            )
        self._explicit[(scope, int(task), int(round))] = Fault(
            kind=kind, factor=float(factor), worker=int(worker)
        )
        return self

    # -- the draw ----------------------------------------------------------------

    def _rng(self, scope: str, task: int, round: int, salt: str = "") -> random.Random:
        key = f"{self.seed}|{scope}|{task}|{round}|{salt}".encode()
        digest = hashlib.sha256(key).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def fault_for(self, scope: str, task: int, round: int = 0) -> Fault | None:
        """The fault injected into this attempt, or ``None`` to run clean."""
        for pattern in (scope, "*"):
            rule = self._explicit.get((pattern, int(task), int(round)))
            if rule is not None:
                return rule
        if round >= self.max_rounds or self.fault_rate <= 0.0:
            return None
        rng = self._rng(scope, task, round)
        if rng.random() >= self.fault_rate:
            return None
        kind = self.kinds[rng.randrange(len(self.kinds))]
        worker = rng.randrange(self.virtual_workers)
        factor = self.slow_factor if kind == "slow" else 1.0
        return Fault(kind=kind, factor=factor, worker=worker)

    def uniform(self, scope: str, task: int, round: int, salt: str = "jitter") -> float:
        """A deterministic U[0,1) draw tied to the same logical identity.

        The recovery layer uses this for backoff jitter so retry delays
        are reproducible, not wall-clock noise.
        """
        return self._rng(scope, task, round, salt=salt).random()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, fault_rate={self.fault_rate}, "
            f"kinds={self.kinds}, max_rounds={self.max_rounds}, "
            f"explicit={len(self._explicit)})"
        )
