"""Driver-side recovery: retries, backoff, blacklisting, speculation.

This is the half of the fault-tolerance story that *survives* the faults
:mod:`repro.runtime.faults` injects.  The entry point is
:func:`run_recovered`, which both substrates and the core join API call
in place of a bare ``pool.run`` whenever a
:class:`~repro.runtime.faults.FaultPlan` is active:

* each task attempt first consults the plan; injected crashes/transients/
  hangs/heartbeat losses are retried with exponential backoff + seeded
  jitter (recorded as ``TaskRetried`` events; delays are simulated, the
  driver never sleeps);
* failures are charged to the plan's *virtual* worker; after
  ``blacklist_after`` of them the worker is blacklisted
  (``WorkerBlacklisted``) and further faults attributed to it are
  suppressed — the schedulers' model of "stop placing work there";
* ``shuffle_loss`` faults invoke the caller's ``repair`` hook (the Spark
  scheduler's lineage recompute, emitting ``StageRecomputed``) before
  the retry; callers without lineage treat them as transients;
* ``slow`` faults dispatch normally carrying a slowdown factor; after
  the batch completes, tasks whose *effective* duration (simulated
  seconds x factor) exceeds ``speculation_k`` x the stage median
  (:func:`repro.obs.monitor.median_sim_seconds` — the same statistic the
  monitor's straggler detector uses) get a duplicate attempt.  First
  completion wins with a deterministic tie-break: the duplicate wins
  only if strictly faster on the simulated clock, ties go to the
  original.  The loser's observability capture is *discarded*, so
  counters and event streams stay byte-identical to the fault-free run;
* ``fatal`` faults and exhausted attempt budgets escalate
  (:class:`FatalFault` / :class:`FaultEscalation`) *before* the batch is
  dispatched — an eager cancel, so an aborted wave leaves no partial
  captures behind (the Impala coordinator relies on this for clean
  whole-query restarts).

Every decision here is a pure function of logical task identity, which
is what keeps recovery deterministic across ``executors`` counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.obs.events import get_event_log
from repro.runtime.faults import Fault, FaultEscalation, make_fault_error

__all__ = ["Outcome", "RecoveryContext", "resolve_faults", "run_recovered"]


@dataclass
class Outcome:
    """One task's final result plus its recovery history."""

    value: Any
    attempts: int = 1
    slow_factor: float = 1.0
    speculated: bool = False


class RecoveryContext:
    """Per-engine recovery state: the plan, failure counts, the blacklist."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.plan = runtime.fault_plan
        self.blacklisted: set[int] = set()
        self._failures: dict[int, int] = {}

    @property
    def active(self) -> bool:
        """True when a fault plan is installed (the chaos path is on)."""
        return self.plan is not None

    def consult(self, scope: str, task: int, round: int) -> Fault | None:
        """The fault this attempt suffers, after blacklist suppression.

        A blacklisted virtual worker no longer receives work, so faults
        the plan attributes to it simply never happen.
        """
        if self.plan is None:
            return None
        fault = self.plan.fault_for(scope, task, round)
        if fault is not None and fault.worker in self.blacklisted:
            return None
        return fault

    def record_failure(self, worker: int) -> bool:
        """Charge one failure to ``worker``; True when it just got blacklisted."""
        count = self._failures.get(worker, 0) + 1
        self._failures[worker] = count
        if count == self.runtime.blacklist_after and worker not in self.blacklisted:
            self.blacklisted.add(worker)
            return True
        return False

    def failures(self, worker: int) -> int:
        return self._failures.get(worker, 0)

    def backoff_seconds(self, scope: str, task: int, attempt: int) -> float:
        """Simulated retry delay: exponential with seeded, bounded jitter."""
        rt = self.runtime
        delay = rt.backoff_base * (rt.backoff_factor ** attempt)
        if rt.backoff_jitter > 0 and self.plan is not None:
            u = self.plan.uniform(scope, task, attempt, salt="backoff")
            delay *= 1.0 + rt.backoff_jitter * (2.0 * u - 1.0)
        return delay


def _emit(events, kind: str, **fields) -> None:
    """Emit a recovery event when logging is on and ids are allocated.

    ``events`` is ``(query_id, stage_id)``; recovery events use
    ``vworker`` (the deterministic virtual worker) rather than the
    volatile physical ``worker`` field, so they survive
    ``normalize_events`` intact.
    """
    log = get_event_log()
    if not log.enabled or events is None:
        return
    query, stage = events
    if query is None:
        return
    record = {"query": query}
    if stage is not None:
        record["stage"] = stage
    record.update(fields)
    log.emit(kind, **record)


# TaskRetried reasons are stable strings, independent of exception text.
_RETRY_REASON = {
    "hang": "timeout",
    "heartbeat_loss": "heartbeat-loss",
    "shuffle_loss": "shuffle-loss",
}


def resolve_faults(
    recovery: RecoveryContext,
    n: int,
    *,
    scope: str,
    events: tuple | None = None,
    limit: int = 1,
    base_round: int = 0,
    repair: Callable[[int, Fault], None] | None = None,
) -> tuple[list[int], list[float]]:
    """Resolve every task's injected faults *before* any work happens.

    Returns ``(attempts, slow_factors)`` per task.  Injected failures are
    consumed here (the faulted attempt never runs, so it charges
    nothing); an exhausted budget raises eagerly — with ``limit=1`` the
    original fault's error class (the Impala coordinator calls this
    directly, ahead of its build side, and turns the error into a
    whole-query restart), otherwise :class:`FaultEscalation`.
    """
    attempts = [1] * n
    factors = [1.0] * n
    for i in range(n):
        attempt = 0
        while True:
            fault = recovery.consult(scope, i, base_round + attempt)
            if fault is None:
                break
            if fault.kind == "slow":
                factors[i] = max(factors[i], fault.factor)
                break
            if fault.kind == "fatal":
                raise make_fault_error(fault, scope, i, base_round + attempt)
            newly = recovery.record_failure(fault.worker)
            if newly:
                _emit(
                    events,
                    "WorkerBlacklisted",
                    vworker=fault.worker,
                    failures=recovery.failures(fault.worker),
                    reason=fault.kind,
                )
            if fault.kind == "shuffle_loss" and repair is not None:
                repair(i, fault)
            if attempt + 1 >= limit:
                if limit <= 1:
                    # No retry budget at all: surface the fault itself
                    # (the Impala path wants the original error class).
                    raise make_fault_error(fault, scope, i, base_round + attempt)
                raise FaultEscalation(fault, scope, i, attempt + 1)
            _emit(
                events,
                "TaskRetried",
                task=i,
                attempt=attempt + 1,
                reason=_RETRY_REASON.get(fault.kind, fault.kind),
                backoff_seconds=round(
                    recovery.backoff_seconds(scope, i, attempt), 6
                ),
                vworker=fault.worker,
            )
            attempt += 1
        attempts[i] = attempt + 1
    return attempts, factors


def run_recovered(
    pool,
    thunks: Sequence[Callable[[], Any]],
    recovery: RecoveryContext,
    *,
    scope: str,
    events: tuple | None = None,
    sim_seconds: Callable[[int, Any], float] | None = None,
    repair: Callable[[int, Fault], None] | None = None,
    max_attempts: int | None = None,
    base_round: int = 0,
    speculation: bool = True,
) -> list[Outcome]:
    """Run ``thunks`` under the fault plan; returns per-task `Outcome`s.

    ``scope`` names the batch in plan draws and events (stable across
    executor counts — stage names, not physical ids).  ``events`` is the
    ``(query_id, stage_id)`` pair recovery events are tagged with.
    ``sim_seconds(index, value)`` extracts a task's simulated duration
    from its result — required for speculation, which is skipped when
    absent.  ``repair(index, fault)`` restores lost shuffle output from
    lineage; without it ``shuffle_loss`` degrades to a transient.
    ``base_round`` offsets the plan's round dimension (the Impala
    coordinator passes its restart number; Spark passes 0 and the round
    is the attempt).  ``max_attempts`` overrides the runtime policy.
    """
    rt = recovery.runtime
    limit = rt.max_task_attempts if max_attempts is None else max_attempts
    n = len(thunks)
    attempts, factors = resolve_faults(
        recovery,
        n,
        scope=scope,
        events=events,
        limit=limit,
        base_round=base_round,
        repair=repair,
    )

    values = pool.run(list(thunks))
    outcomes = [
        Outcome(value=values[i], attempts=attempts[i], slow_factor=factors[i])
        for i in range(n)
    ]

    if not (
        speculation
        and rt.speculation
        and recovery.active
        and sim_seconds is not None
        and n >= rt.speculation_min_tasks
    ):
        return outcomes

    # Straggler speculation: judge *effective* durations (clean simulated
    # seconds x injected slowdown) against the stage median, the same
    # statistic bench monitor's straggler detector uses.
    from repro.obs.monitor import median_sim_seconds

    durations = [float(sim_seconds(i, outcomes[i].value)) for i in range(n)]
    effective = [durations[i] * outcomes[i].slow_factor for i in range(n)]
    median = median_sim_seconds(effective)
    if median <= 0:
        return outcomes
    candidates = [
        i
        for i in range(n)
        if outcomes[i].slow_factor > 1.0
        and effective[i] > rt.speculation_k * median
    ]
    if not candidates:
        return outcomes
    duplicates = pool.run([thunks[i] for i in candidates])
    for i, duplicate in zip(candidates, duplicates):
        # The duplicate attempt runs at full speed (its worker is not
        # slowed); first completion on the simulated clock wins, ties go
        # to the original — deterministic, and since the task is a pure
        # function the winning value is byte-identical either way.
        winner = "speculative" if durations[i] < effective[i] else "original"
        _emit(
            events,
            "TaskSpeculated",
            task=i,
            factor=outcomes[i].slow_factor,
            sim_seconds=round(durations[i], 6),
            effective_seconds=round(effective[i], 6),
            median_seconds=round(median, 6),
            winner=winner,
        )
        if winner == "speculative":
            outcomes[i] = Outcome(
                value=duplicate,
                attempts=outcomes[i].attempts + 1,
                slow_factor=1.0,
                speculated=True,
            )
    return outcomes
