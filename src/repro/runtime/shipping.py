"""Worker-side observability capture and driver-side replay.

Pool workers must not mutate the driver's process-wide observability
state (they literally can't — they're separate processes), yet the hard
invariant says profiles, counters and traces must be byte-identical with
the pool on or off.  The protocol:

* the worker wraps task execution in :func:`capture_observability`,
  which gives the task a fresh tracer, a fresh (buffering, path-less)
  event sink, and swaps the registry's dicts so every ``REGISTRY.inc``
  lands task-locally;
* the resulting :class:`ObsCapture` (root spans + counter/gauge/histogram
  deltas + structured events) ships back with the task result —
  everything in it is picklable;
* the driver calls :func:`apply_capture` while merging results in
  deterministic task order, folding counters into the real registry,
  grafting the worker's spans under the currently open driver span, and
  replaying the worker's events into the real sink (which is where they
  first touch the JSONL file — workers never write to the driver's
  forked file handle).

Counter values throughout the codebase are integer-valued floats (bytes,
rows, tiles), so driver-side summation is exact regardless of how tasks
were grouped across workers.

As a side benefit of running inside a real worker, the capture knows its
physical placement: root spans get ``worker``/``worker_pid`` attrs (so
Chrome-trace export can lay one lane per worker) and, when the event sink
is enabled, one ``WorkerHeartbeat`` event is recorded per captured task.
Both are placement facts that only exist on the pooled path; neither is
compared by the equivalence suite nor survives
:func:`~repro.obs.events.normalize_events`.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.events import EventLog, get_event_log, set_event_log
from repro.obs.registry import REGISTRY
from repro.obs.tracer import Span, Tracer, get_tracer, set_tracer

__all__ = ["ObsCapture", "capture_observability", "apply_capture"]

# Per-worker count of captured tasks, reported in WorkerHeartbeat events.
_TASKS_DONE = 0


@dataclass
class ObsCapture:
    """Everything a task did to observability state, in picklable form."""

    spans: list[Span] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, list[float]] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)


@contextlib.contextmanager
def capture_observability(capture: ObsCapture) -> Iterator[ObsCapture]:
    """Redirect spans, registry writes and events into ``capture``.

    Used on both the worker (always) and, crucially, never on the serial
    path — the serial backends run tasks inline against the real driver
    state, which is what the equivalence suite pins the pool path to.
    """
    global _TASKS_DONE
    from repro.runtime.pool import current_worker_id

    previous_tracer = get_tracer()
    worker_tracer = set_tracer(Tracer(enabled=previous_tracer.enabled))
    previous_sink = get_event_log()
    # Same enabled bit, no path: events buffer in memory and ship back.
    worker_sink = set_event_log(EventLog(path=None, enabled=previous_sink.enabled))
    token = REGISTRY.begin_capture()
    try:
        yield capture
    finally:
        counters, gauges, histograms = REGISTRY.end_capture(token)
        set_tracer(previous_tracer)
        set_event_log(previous_sink)
        worker = current_worker_id()
        if worker is not None:
            for span in worker_tracer.roots:
                span.attrs.setdefault("worker", worker)
                span.attrs.setdefault("worker_pid", os.getpid())
            if worker_sink.enabled:
                _TASKS_DONE += 1
                worker_sink.emit(
                    "WorkerHeartbeat",
                    worker=worker,
                    pid=os.getpid(),
                    wall_time=time.perf_counter(),
                    tasks_done=_TASKS_DONE,
                )
        capture.spans = worker_tracer.roots
        capture.counters = counters
        capture.gauges = gauges
        capture.histograms = {
            name: hist.values for name, hist in histograms.items()
        }
        capture.events = worker_sink.events


def apply_capture(capture: ObsCapture) -> None:
    """Replay a shipped capture into the driver's observability state."""
    REGISTRY.merge(capture.counters, capture.gauges, capture.histograms)
    get_tracer().graft(capture.spans)
    sink = get_event_log()
    for record in capture.events:
        sink.emit_raw(record)
