"""Worker-side observability capture and driver-side replay.

Pool workers must not mutate the driver's process-wide observability
state (they literally can't — they're separate processes), yet the hard
invariant says profiles, counters and traces must be byte-identical with
the pool on or off.  The protocol:

* the worker wraps task execution in :func:`capture_observability`,
  which gives the task a fresh tracer and swaps the registry's dicts so
  every ``REGISTRY.inc`` lands task-locally;
* the resulting :class:`ObsCapture` (root spans + counter/gauge deltas)
  ships back with the task result — everything in it is picklable;
* the driver calls :func:`apply_capture` while merging results in
  deterministic task order, folding counters into the real registry and
  grafting the worker's spans under the currently open driver span.

Counter values throughout the codebase are integer-valued floats (bytes,
rows, tiles), so driver-side summation is exact regardless of how tasks
were grouped across workers.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.registry import REGISTRY
from repro.obs.tracer import Span, Tracer, get_tracer, set_tracer

__all__ = ["ObsCapture", "capture_observability", "apply_capture"]


@dataclass
class ObsCapture:
    """Everything a task did to observability state, in picklable form."""

    spans: list[Span] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)


@contextlib.contextmanager
def capture_observability(capture: ObsCapture) -> Iterator[ObsCapture]:
    """Redirect tracer spans and registry increments into ``capture``.

    Used on both the worker (always) and, crucially, never on the serial
    path — the serial backends run tasks inline against the real driver
    state, which is what the equivalence suite pins the pool path to.
    """
    previous_tracer = get_tracer()
    worker_tracer = set_tracer(Tracer(enabled=previous_tracer.enabled))
    token = REGISTRY.begin_capture()
    try:
        yield capture
    finally:
        counters, gauges = REGISTRY.end_capture(token)
        set_tracer(previous_tracer)
        capture.spans = worker_tracer.roots
        capture.counters = counters
        capture.gauges = gauges


def apply_capture(capture: ObsCapture) -> None:
    """Replay a shipped capture into the driver's observability state."""
    REGISTRY.merge(capture.counters, capture.gauges)
    get_tracer().graft(capture.spans)
