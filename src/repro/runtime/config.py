"""`RuntimeConfig`: one value for every execution-runtime knob.

Before this existed the runtime surface was spread across loose keywords
— ``executors=`` and ``events_out=`` on :class:`~repro.core.api.JoinConfig`,
:class:`~repro.spark.context.SparkContext` and
:class:`~repro.impala.coordinator.ImpalaBackend`, plus retry constants
baked into the Spark scheduler.  :class:`RuntimeConfig` gathers them,
adds the fault-tolerance policy (retry/timeout/backoff, speculation,
blacklisting, restart budget, the injected :class:`~repro.runtime.faults.FaultPlan`),
and is accepted everywhere via a ``runtime=`` keyword.

**Precedence rule (the only one):** an explicit ``RuntimeConfig`` wins
over the loose keywords.  When no ``RuntimeConfig`` is given, the loose
``executors``/``events_out`` keywords are packed into an implicit one,
so every existing call shape keeps working — it just routes through
here.  (This mirrors ``spatial_join``'s existing rule that ``config=``
beats loose keywords.)

Timeouts and backoff delays are *simulated* quantities: they classify
hangs and are recorded in recovery events, but never sleep the driver
and never charge the cost model — recovery bookkeeping must not perturb
the byte-identity invariant (pairs, counters, profiles and simulated
seconds match the fault-free run exactly).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.runtime.faults import FaultPlan
from repro.runtime.pool import TaskPool, validate_executors

__all__ = ["RuntimeConfig"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution-runtime policy shared by both substrates.

    ==================== =======================================================
    field                meaning
    ==================== =======================================================
    executors            pool size: ``None``/``"serial"``/int >= 1/`TaskPool`
    max_task_attempts    Spark-side attempts per task (injected + real errors)
    task_timeout         simulated seconds before an attempt counts as hung
    backoff_base         first retry delay (simulated seconds)
    backoff_factor       exponential growth per further retry
    backoff_jitter       +/- fraction of deterministic jitter on each delay
    speculation          launch duplicate attempts for stragglers (Spark/core)
    speculation_k        speculate when effective time > k x stage median
    speculation_min_tasks minimum sibling tasks before medians mean anything
    blacklist_after      virtual-worker failures before it is blacklisted
    restart_budget       Impala-side whole-query restarts before giving up
    fault_plan           the injected :class:`FaultPlan` (``None`` = no chaos)
    events_out           JSONL event-log path (same as the loose keyword)
    cache_budget_bytes   cross-query cache budget; ``None``/``0`` = caching off
    columnar             use the packed-buffer geometry data plane (default on;
                         the object path is the byte-identical reference oracle)
    ==================== =======================================================
    """

    executors: Any = None
    max_task_attempts: int = 4
    task_timeout: float = 30.0
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    speculation: bool = True
    speculation_k: float = 2.0
    speculation_min_tasks: int = 2
    blacklist_after: int = 2
    restart_budget: int = 2
    fault_plan: FaultPlan | None = None
    events_out: str | None = None
    cache_budget_bytes: int | None = None
    columnar: bool = True

    def __post_init__(self):
        if not isinstance(self.executors, TaskPool):
            validate_executors(self.executors, what="RuntimeConfig.executors")
        if (
            isinstance(self.max_task_attempts, bool)
            or not isinstance(self.max_task_attempts, int)
            or self.max_task_attempts < 1
        ):
            raise ReproError(
                "RuntimeConfig.max_task_attempts must be an integer >= 1, "
                f"got {self.max_task_attempts!r}"
            )
        if self.task_timeout <= 0:
            raise ReproError(
                f"RuntimeConfig.task_timeout must be > 0, got {self.task_timeout!r}"
            )
        if self.backoff_base < 0:
            raise ReproError(
                f"RuntimeConfig.backoff_base must be >= 0, got {self.backoff_base!r}"
            )
        if self.backoff_factor < 1.0:
            raise ReproError(
                f"RuntimeConfig.backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ReproError(
                f"RuntimeConfig.backoff_jitter must be in [0, 1], "
                f"got {self.backoff_jitter!r}"
            )
        if self.speculation_k <= 0:
            raise ReproError(
                f"RuntimeConfig.speculation_k must be > 0, got {self.speculation_k!r}"
            )
        if self.speculation_min_tasks < 1:
            raise ReproError(
                "RuntimeConfig.speculation_min_tasks must be >= 1, "
                f"got {self.speculation_min_tasks!r}"
            )
        if self.blacklist_after < 1:
            raise ReproError(
                "RuntimeConfig.blacklist_after must be >= 1, "
                f"got {self.blacklist_after!r}"
            )
        if self.restart_budget < 0:
            raise ReproError(
                "RuntimeConfig.restart_budget must be >= 0, "
                f"got {self.restart_budget!r}"
            )
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ReproError(
                f"RuntimeConfig.fault_plan must be a FaultPlan or None, "
                f"got {type(self.fault_plan).__name__}"
            )
        if self.cache_budget_bytes is not None and (
            isinstance(self.cache_budget_bytes, bool)
            or not isinstance(self.cache_budget_bytes, int)
            or self.cache_budget_bytes < 0
        ):
            raise ReproError(
                "RuntimeConfig.cache_budget_bytes must be None or an "
                f"integer >= 0, got {self.cache_budget_bytes!r}"
            )
        if not isinstance(self.columnar, bool):
            raise ReproError(
                f"RuntimeConfig.columnar must be a bool, got {self.columnar!r}"
            )

    def with_(self, **changes) -> "RuntimeConfig":
        """A copy with the given fields replaced (frozen dataclass idiom)."""
        return dataclasses.replace(self, **changes)
