"""Executor pools: real multicore execution under both substrates.

Until this layer existed, every Spark task and every Impala plan fragment
ran serially in one Python process — parallelism lived only in the
simulated-time accounting.  :class:`TaskPool` is the shared abstraction
both substrates dispatch through:

* :class:`SerialBackend` — the current behaviour and the default for
  tests: tasks run inline, in submission order, on the driver.
* :class:`ProcessBackend` — ``multiprocessing`` workers.  Dispatch is
  *pickle-once*: on platforms with ``fork`` (Linux), task closures and
  every broadcast/index payload they capture are inherited by the worker
  processes at fork time and never serialised at all; elsewhere payloads
  registered via :meth:`TaskPool.install_payload` are pickled once and
  installed into each worker exactly once, never re-pickled per task.

Workers pull task indices from a shared queue — free worker takes the
next task, i.e. *dynamic* placement — and the driver consumes completed
results as they land, then returns them in deterministic task order.
Results must be picklable; tasks that raise ship the exception back and
the driver re-raises the lowest-indexed failure after the batch drains.

The hard invariant carried by both substrates: results are byte-identical
with the pool on or off (pairs, pair order, counter totals, profiles and
simulated seconds), so the simulation model stays the ground truth and
real parallelism is purely a wall-clock win.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as queue_mod
import traceback
from typing import Any, Callable, Sequence

from repro.errors import ReproError

__all__ = [
    "PoolError",
    "TaskPool",
    "SerialBackend",
    "ProcessBackend",
    "validate_executors",
    "make_pool",
    "picklable_error",
    "current_worker_id",
]


class PoolError(ReproError):
    """Task-pool failure: bad configuration, dead worker, unpicklable data."""


# Worker-side state.  Under ``fork`` the dict is populated on the driver
# and inherited by the workers (zero serialisation); under ``spawn`` each
# worker's initializer unpickles the install blob into it exactly once.
_PAYLOADS: dict[str, Any] = {}

# Tasks for the current fork-mode run; workers inherit the reference at
# fork time, so closures (and everything they capture) cross the process
# boundary without ever touching pickle.
_FORK_TASKS: Sequence[Callable[[], Any]] | None = None

# This process's worker index within its pool (None on the driver).  Set
# by the worker mains before the task loop; observability shipping reads
# it to label captured spans and events with their physical executor.
_WORKER_ID: int | None = None


def current_worker_id() -> int | None:
    """This process's pool worker index, or ``None`` on the driver."""
    return _WORKER_ID


def get_payload(key: str) -> Any:
    """Worker-side accessor for a payload installed with ``install_payload``."""
    try:
        return _PAYLOADS[key]
    except KeyError:
        raise PoolError(f"no payload installed under {key!r}") from None


def validate_executors(executors, what: str = "executors") -> int:
    """Normalise the executors knob to a worker count.

    Accepts ``None`` / ``"serial"`` (run inline) or an integer >= 1;
    anything else raises :class:`ReproError` with a clear message.
    """
    if executors is None or executors == "serial":
        return 1
    if isinstance(executors, bool) or not isinstance(executors, int):
        raise ReproError(
            f"{what} must be 'serial' or an integer >= 1, got {executors!r}"
        )
    if executors < 1:
        raise ReproError(
            f"{what} must be 'serial' or an integer >= 1, got {executors}"
        )
    return executors


def make_pool(executors=None) -> "TaskPool":
    """Build the pool for an ``executors`` knob value.

    ``None``/``"serial"``/``1`` give the inline :class:`SerialBackend`;
    larger integers give a :class:`ProcessBackend` with that many workers.
    An existing :class:`TaskPool` instance passes through unchanged.
    """
    if isinstance(executors, TaskPool):
        return executors
    workers = validate_executors(executors)
    if workers <= 1:
        return SerialBackend()
    return ProcessBackend(workers)


class TaskPool:
    """Executes a batch of zero-argument tasks, preserving task order."""

    workers: int = 1
    name: str = "pool"

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1

    @property
    def supports_closures(self) -> bool:
        """True when tasks may be arbitrary closures (inline or fork)."""
        return True

    def install_payload(self, key: str, value: Any) -> None:
        """Register a heavy read-only payload for worker-side access.

        The payload is shipped to workers at most once (inherited for
        free under ``fork``); tasks retrieve it with
        :func:`get_payload` instead of capturing it per task.
        """
        _PAYLOADS[key] = value

    def run(
        self,
        tasks: Sequence[Callable[[], Any]],
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list:
        """Run every task; returns their results in task order.

        ``on_result(index, value)`` is invoked as completions land (in
        completion order under a process pool), before the ordered list is
        returned — the hook dynamic schedulers use to consume stragglers'
        siblings early.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (workers are per-run; this is a no-op)."""


class SerialBackend(TaskPool):
    """Run tasks inline on the driver, in submission order."""

    workers = 1
    name = "serial"

    def run(self, tasks, on_result=None) -> list:
        results = []
        for index, task in enumerate(tasks):
            value = task()
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results


def picklable_error(error: BaseException) -> BaseException:
    """Ship ``error`` across the process boundary, degrading gracefully.

    Tries the exception itself, then a same-type rebuild from its message
    (dropping unpicklable ``__cause__`` chains), then a :class:`PoolError`
    carrying the repr.  The message the driver re-raises is unchanged in
    the first two cases, which is what the retry-semantics tests pin.
    """
    try:
        pickle.dumps(error)
        return error
    except Exception:
        pass
    try:
        rebuilt = type(error)(str(error))
        pickle.dumps(rebuilt)
        return rebuilt
    except Exception:
        return PoolError(
            f"task raised unpicklable {type(error).__name__}: {error}"
        )


def _ship_error(exc: BaseException, tb: str):
    """Best-effort picklable form of a worker exception."""
    try:
        pickle.dumps(exc)
    except Exception:
        exc = PoolError(f"task raised unpicklable {type(exc).__name__}: {exc}")
    return (exc, tb)


def _worker_loop(tasks, task_queue, result_queue) -> None:
    """Pull task indices until the poison pill; ship pre-pickled results.

    Results are pickled *in this thread* (not ``mp.Queue``'s feeder
    thread) so serialisation failures are catchable and shipped as
    errors instead of hanging the driver.
    """
    while True:
        index = task_queue.get()
        if index is None:
            return
        try:
            value = tasks[index]()
            blob = pickle.dumps((index, True, value))
        except BaseException as exc:  # noqa: BLE001 - everything ships back
            blob = pickle.dumps(
                (index, False, _ship_error(exc, traceback.format_exc()))
            )
        result_queue.put(blob)


def _fork_worker_main(worker_id, task_queue, result_queue) -> None:
    global _WORKER_ID
    _WORKER_ID = worker_id
    _worker_loop(_FORK_TASKS, task_queue, result_queue)


class _SpawnTask:
    """A pickled task for spawn-mode dispatch (must be a picklable callable)."""

    __slots__ = ("blob",)

    def __init__(self, func: Callable[[], Any]):
        try:
            self.blob = pickle.dumps(func)
        except Exception as exc:
            raise PoolError(
                "ProcessBackend without fork requires picklable tasks "
                f"(module-level functions / functools.partial): {exc}"
            ) from exc

    def __call__(self):
        return pickle.loads(self.blob)()


def _spawn_worker_main(worker_id, payload_blobs, task_queue, result_queue) -> None:
    global _WORKER_ID
    _WORKER_ID = worker_id
    # Each value was pickled exactly once on the driver; the bytes cross
    # the process boundary verbatim and are unpickled here exactly once.
    for key, blob in payload_blobs.items():
        _PAYLOADS[key] = pickle.loads(blob)
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, blob = item
        try:
            value = pickle.loads(blob)()
            out = pickle.dumps((index, True, value))
        except BaseException as exc:  # noqa: BLE001
            out = pickle.dumps(
                (index, False, _ship_error(exc, traceback.format_exc()))
            )
        result_queue.put(out)


class ProcessBackend(TaskPool):
    """``multiprocessing`` workers with pickle-once dispatch.

    Workers are forked (or spawned) per :meth:`run` call so they always
    see the driver's current state — shuffle blocks, caches, broadcast
    values — without any per-task serialisation.  The fork cost is paid
    once per stage and amortised by PR 3's coarse batch tasks.
    """

    name = "process"

    def __init__(self, workers: int, start_method: str | None = None):
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise PoolError(f"workers must be an integer >= 1, got {workers!r}")
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        if start_method not in mp.get_all_start_methods():
            raise PoolError(f"start method {start_method!r} not available")
        self.workers = workers
        self._ctx = mp.get_context(start_method)
        self._start_method = start_method
        self._payload_blobs: dict[str, bytes] = {}

    @property
    def supports_closures(self) -> bool:
        return self._start_method == "fork"

    def install_payload(self, key: str, value: Any) -> None:
        _PAYLOADS[key] = value
        if not self.supports_closures:
            # Pickled exactly once, ever; reused for every worker and run.
            self._payload_blobs[key] = pickle.dumps(value)

    def run(self, tasks, on_result=None) -> list:
        tasks = list(tasks)
        if not tasks:
            return []
        if self.supports_closures:
            return self._run_fork(tasks, on_result)
        return self._run_spawn(tasks, on_result)

    # -- fork dispatch ---------------------------------------------------------

    def _run_fork(self, tasks, on_result) -> list:
        global _FORK_TASKS
        n = len(tasks)
        workers = min(self.workers, n)
        task_queue = self._ctx.Queue()
        result_queue = self._ctx.Queue()
        for index in range(n):
            task_queue.put(index)
        for _ in range(workers):
            task_queue.put(None)
        _FORK_TASKS = tasks
        procs = [
            self._ctx.Process(
                target=_fork_worker_main,
                args=(worker_id, task_queue, result_queue),
                daemon=True,
            )
            for worker_id in range(workers)
        ]
        try:
            self._start_all(procs)
        finally:
            _FORK_TASKS = None
        return self._collect(n, task_queue, result_queue, procs, on_result)

    # -- spawn dispatch --------------------------------------------------------

    def _run_spawn(self, tasks, on_result) -> list:
        n = len(tasks)
        workers = min(self.workers, n)
        blobs = [task.blob if isinstance(task, _SpawnTask) else _SpawnTask(task).blob
                 for task in tasks]
        task_queue = self._ctx.Queue()
        result_queue = self._ctx.Queue()
        for index, blob in enumerate(blobs):
            task_queue.put((index, blob))
        for _ in range(workers):
            task_queue.put(None)
        procs = [
            self._ctx.Process(
                target=_spawn_worker_main,
                args=(worker_id, dict(self._payload_blobs), task_queue, result_queue),
                daemon=True,
            )
            for worker_id in range(workers)
        ]
        self._start_all(procs)
        return self._collect(n, task_queue, result_queue, procs, on_result)

    # -- lifecycle --------------------------------------------------------------

    @staticmethod
    def _start_all(procs) -> None:
        """Start every worker; on a mid-startup failure, reap the started ones."""
        started = []
        try:
            for proc in procs:
                proc.start()
                started.append(proc)
        except BaseException:
            for proc in started:
                proc.terminate()
            for proc in started:
                proc.join(timeout=5.0)
            raise

    @staticmethod
    def _shutdown(procs, task_queue, result_queue, graceful: bool) -> None:
        """Reap every worker, leaving no zombie behind.

        ``graceful`` (the batch drained) waits briefly for workers to see
        their poison pills; the error path (a driver-side ``on_result``
        callback raised mid-dispatch, an unpicklable result, a lost
        worker) terminates immediately — the remaining queued tasks are
        abandoned, not worth up to 5 s of join timeout per worker.
        Either way stragglers are terminated *and then joined*, which is
        the fix for the old leak: ``terminate()`` without a follow-up
        ``join()`` left zombies (and, with queued work still pending,
        live workers) behind a raising callback.
        """
        if graceful:
            for proc in procs:
                proc.join(timeout=5.0)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            if proc.is_alive():
                proc.join(timeout=5.0)
        # Abandoned queues must not block interpreter exit on their
        # feeder threads (the driver wrote task indices it may never
        # consume back); dropping the unsent tail is fine — the batch is
        # over either way.
        for q in (task_queue, result_queue):
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass

    # -- completion consumption ------------------------------------------------

    def _collect(self, n, task_queue, result_queue, procs, on_result) -> list:
        """Consume completions as they land; return results in task order."""
        results: list = [None] * n
        errors: list[tuple[int, BaseException, str]] = []
        remaining = n
        try:
            while remaining:
                try:
                    blob = result_queue.get(timeout=1.0)
                except queue_mod.Empty:
                    if not any(proc.is_alive() for proc in procs):
                        raise PoolError(
                            f"{remaining} task(s) lost: worker process(es) "
                            "died without reporting results"
                        ) from None
                    continue
                index, ok, value = pickle.loads(blob)
                if ok:
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
                else:
                    errors.append((index, *value))
                remaining -= 1
        except BaseException:
            self._shutdown(procs, task_queue, result_queue, graceful=False)
            raise
        self._shutdown(procs, task_queue, result_queue, graceful=True)
        if errors:
            errors.sort(key=lambda e: e[0])
            _, exc, tb = errors[0]
            exc.add_note(f"(in pool worker)\n{tb}")
            raise exc
        return results
