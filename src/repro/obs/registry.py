"""Process-wide named counters and gauges.

A :class:`MetricsRegistry` is the cheap always-there complement to the
span tracer: instrumented substrate code (HDFS reads, shuffle writes,
partitioned-join tiles) bumps named counters without any scoping, and
reports/tests read a snapshot afterwards.

Like the tracer, the shared :data:`REGISTRY` starts **disabled**:
``inc``/``set_gauge`` test one boolean and return, so substrate hot paths
cost nothing when nobody is observing.  Enable it directly
(``REGISTRY.enabled = True``) or scoped via :func:`collecting`.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

__all__ = ["Histogram", "MetricsRegistry", "REGISTRY", "collecting"]


class Histogram:
    """A distribution of observed values with nearest-rank percentiles.

    Raw values are kept (these are telemetry-scale populations — tasks
    per stage, not requests per second), so any percentile is exact and
    two registries that observed the same values report the same
    summary regardless of arrival order.
    """

    __slots__ = ("values",)

    def __init__(self, values: list[float] | None = None):
        self.values: list[float] = list(values) if values else []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the observed values, ``q`` in [0, 100]."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/p50/p95 — the stage-table columns."""
        if not self.values:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0}
        return {
            "count": len(self.values),
            "sum": sum(self.values),
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Named monotonically-increasing counters plus last-value gauges.

    A third kind, histograms (:meth:`observe` / :meth:`histogram`),
    records full value distributions — the monitor uses them for
    per-stage task-duration p50/p95/max tables.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- write side (no-ops while disabled) ------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one observation to histogram ``name`` (creating it empty)."""
        if not self.enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    # -- read side --------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current counter value (0.0 when never incremented)."""
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float | None:
        """Latest gauge value (None when never set)."""
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram:
        """Histogram ``name`` (an empty one when never observed)."""
        return self._histograms.get(name, Histogram())

    def snapshot(self) -> dict[str, dict]:
        """Copy of everything, for reports and JSON export.

        Histograms appear as their :meth:`Histogram.summary` dicts so the
        snapshot stays plain-JSON.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: hist.summary() for name, hist in self._histograms.items()
            },
        }

    def reset(self) -> None:
        """Zero every counter, drop every gauge and histogram."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- pool-safe capture -------------------------------------------------------

    def begin_capture(self) -> tuple[dict, dict, dict]:
        """Swap in fresh counter/gauge/histogram dicts; old triple is the token.

        Pool workers bracket task execution with ``begin_capture`` /
        ``end_capture`` so counter increments accumulate task-locally and
        ship back with the result instead of mutating the driver registry
        from another process.  Dict swapping (rather than snapshot
        subtraction) keeps captured values exactly what ``inc`` wrote —
        no float arithmetic on the way in or out.
        """
        token = (self._counters, self._gauges, self._histograms)
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        return token

    def end_capture(self, token: tuple[dict, dict, dict]) -> tuple[dict, dict, dict]:
        """Finish a capture: restore the token's dicts, return the captured."""
        captured = (self._counters, self._gauges, self._histograms)
        self._counters, self._gauges, self._histograms = token
        return captured

    def merge(
        self,
        counters: dict[str, float],
        gauges: dict[str, float],
        histograms: dict[str, list[float]] | None = None,
    ) -> None:
        """Fold a captured delta into this registry (driver-side merge).

        ``histograms`` maps name → raw observed values (the wire form a
        capture ships them in).
        """
        if not self.enabled:
            return
        for name, amount in counters.items():
            self._counters[name] = self._counters.get(name, 0.0) + amount
        self._gauges.update(gauges)
        for name, values in (histograms or {}).items():
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.values.extend(values)


# The process-wide registry instrumented substrate code reports to.
REGISTRY = MetricsRegistry(enabled=False)


@contextlib.contextmanager
def collecting(registry: MetricsRegistry = REGISTRY) -> Iterator[MetricsRegistry]:
    """Enable (and afterwards restore) a registry around a block::

        with collecting() as reg:
            run_query(...)
        print(reg.counter("hdfs.bytes_read"))

    The registry is reset on entry so the block's counts stand alone.
    """
    previous = registry.enabled
    registry.reset()
    registry.enabled = True
    try:
        yield registry
    finally:
        registry.enabled = previous
