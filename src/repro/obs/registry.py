"""Process-wide named counters and gauges.

A :class:`MetricsRegistry` is the cheap always-there complement to the
span tracer: instrumented substrate code (HDFS reads, shuffle writes,
partitioned-join tiles) bumps named counters without any scoping, and
reports/tests read a snapshot afterwards.

Like the tracer, the shared :data:`REGISTRY` starts **disabled**:
``inc``/``set_gauge`` test one boolean and return, so substrate hot paths
cost nothing when nobody is observing.  Enable it directly
(``REGISTRY.enabled = True``) or scoped via :func:`collecting`.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

__all__ = ["MetricsRegistry", "REGISTRY", "collecting"]


class MetricsRegistry:
    """Named monotonically-increasing counters plus last-value gauges."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    # -- write side (no-ops while disabled) ------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        if not self.enabled:
            return
        self._gauges[name] = value

    # -- read side --------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current counter value (0.0 when never incremented)."""
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float | None:
        """Latest gauge value (None when never set)."""
        return self._gauges.get(name)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Copy of everything, for reports and JSON export."""
        return {"counters": dict(self._counters), "gauges": dict(self._gauges)}

    def reset(self) -> None:
        """Zero every counter and drop every gauge."""
        self._counters.clear()
        self._gauges.clear()

    # -- pool-safe capture -------------------------------------------------------

    def begin_capture(self) -> tuple[dict[str, float], dict[str, float]]:
        """Swap in fresh counter/gauge dicts; returns the old pair as a token.

        Pool workers bracket task execution with ``begin_capture`` /
        ``end_capture`` so counter increments accumulate task-locally and
        ship back with the result instead of mutating the driver registry
        from another process.  Dict swapping (rather than snapshot
        subtraction) keeps captured values exactly what ``inc`` wrote —
        no float arithmetic on the way in or out.
        """
        token = (self._counters, self._gauges)
        self._counters = {}
        self._gauges = {}
        return token

    def end_capture(
        self, token: tuple[dict[str, float], dict[str, float]]
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Finish a capture: restore the token's dicts, return the captured."""
        captured = (self._counters, self._gauges)
        self._counters, self._gauges = token
        return captured

    def merge(self, counters: dict[str, float], gauges: dict[str, float]) -> None:
        """Fold a captured delta into this registry (driver-side merge)."""
        if not self.enabled:
            return
        for name, amount in counters.items():
            self._counters[name] = self._counters.get(name, 0.0) + amount
        self._gauges.update(gauges)


# The process-wide registry instrumented substrate code reports to.
REGISTRY = MetricsRegistry(enabled=False)


@contextlib.contextmanager
def collecting(registry: MetricsRegistry = REGISTRY) -> Iterator[MetricsRegistry]:
    """Enable (and afterwards restore) a registry around a block::

        with collecting() as reg:
            run_query(...)
        print(reg.counter("hdfs.bytes_read"))

    The registry is reset on entry so the block's counts stand alone.
    """
    previous = registry.enabled
    registry.reset()
    registry.enabled = True
    try:
        yield registry
    finally:
        registry.enabled = previous
