"""Replay-driven cluster monitor: timelines, stage tables, stragglers.

Everything here consumes a structured event stream
(:mod:`repro.obs.events`) *after the fact* — the monitor never touches
live engine state, so the same report can be rendered from the in-memory
event list of a run that just finished or from a JSONL file written by a
run last week (``python -m repro.bench monitor events.jsonl``).

Four views, stacked by :func:`monitor_report`:

* **per-worker Gantt timelines** — one ASCII lane per ``(pid, worker)``
  pair on the real wall clock ('█' busy, '·' idle), which is where PR 4's
  dynamic task placement becomes visible: a serial run is one solid
  driver lane, a pooled run is N interleaved worker lanes;
* **stage summary tables** — per-stage task counts and duration
  histograms (p50/p95/max via :class:`~repro.obs.registry.Histogram`)
  on the *simulated* clock, so the numbers are deterministic;
* **straggler detection** — the paper's skew diagnostic: any task whose
  simulated duration exceeds ``k×`` its stage's median is reported with
  its partition/tile id, making hot tiles attributable (Section V's
  static-vs-dynamic discussion, LocationSpark's sQSMonitor idea);
* **utilization accounting** — per-lane busy fraction and largest idle
  gap over the run's wall-clock span;
* **recovery timelines** — the schema-v2 recovery events (retries with
  backoff, speculative duplicates, blacklisted virtual workers, lineage
  recomputes, whole-query restarts) rendered chronologically, so a chaos
  run's healing is as inspectable as its stragglers;
* **cache activity** — the schema-v3 cross-query cache events summarised
  per artifact kind (hits/misses/evictions and bytes served from cache),
  shown only when the log contains any.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import CACHE_EVENT_TYPES, RECOVERY_EVENT_TYPES
from repro.obs.registry import Histogram

__all__ = [
    "TaskRecord",
    "parse_tasks",
    "stage_names",
    "median_sim_seconds",
    "render_timelines",
    "render_stage_summary",
    "detect_stragglers",
    "render_stragglers",
    "render_utilization",
    "render_recovery",
    "render_cache_activity",
    "monitor_report",
]


def median_sim_seconds(durations: list[float]) -> float:
    """Median of simulated durations, via the stage-table histogram.

    This is the statistic both :func:`detect_stragglers` (after the
    fact) and the speculation logic in :mod:`repro.runtime.recovery`
    (at run time) measure against — one definition, nearest-rank exact,
    order-independent.
    """
    return Histogram(list(durations)).percentile(50)


@dataclass
class TaskRecord:
    """One completed unit of work: a joined TaskStart/TaskEnd pair.

    Impala fragment instances (FragmentStart/FragmentEnd) are folded into
    the same shape — their stage is the synthetic ``"fragments"`` group —
    so every monitor view works for both engines.
    """

    query: int
    stage: object  # stage id (int) or "fragments"
    task: object  # task index or fragment node id
    partition: object
    label: str
    worker: object
    pid: object
    wall_start: float
    wall_end: float
    sim_seconds: float
    counters: dict = field(default_factory=dict)
    failures: int = 0

    @property
    def lane(self) -> str:
        """The timeline row this task renders on."""
        if self.worker is None:
            return "driver"
        return f"worker-{self.worker} (pid {self.pid})"


def _num(value, default: float = 0.0) -> float:
    """A numeric field that may be absent *or* present-but-null.

    Hand-written or truncated JSONL logs carry ``"sim_seconds": null``
    where the emitters write a float; ``record.get(key, 0.0)`` returns
    that ``None`` and a later histogram raises.  Treat null as missing.
    """
    return default if value is None else float(value)


def parse_tasks(events: list[dict]) -> list[TaskRecord]:
    """Join start/end events into :class:`TaskRecord` rows.

    Unpaired starts (a crashed query's tail) are dropped — the monitor
    reports completed work.  Null-valued numeric fields are treated as
    absent, so partially-written logs degrade instead of raising.
    """
    starts: dict[tuple, dict] = {}
    records: list[TaskRecord] = []
    for record in events:
        kind = record.get("event")
        if kind == "TaskStart":
            starts[("t", record.get("query"), record.get("stage"), record.get("task"))] = record
        elif kind == "FragmentStart":
            starts[("f", record.get("query"), record.get("fragment"))] = record
        elif kind == "TaskEnd":
            start = starts.pop(
                ("t", record.get("query"), record.get("stage"), record.get("task")),
                {},
            )
            records.append(
                TaskRecord(
                    query=record.get("query"),
                    stage=record.get("stage"),
                    task=record.get("task"),
                    partition=record.get("partition"),
                    label=record.get("label", f"task-{record.get('task')}"),
                    worker=record.get("worker"),
                    pid=record.get("pid"),
                    wall_start=_num(
                        start.get("wall_start", record.get("wall_end"))
                    ),
                    wall_end=_num(record.get("wall_end")),
                    sim_seconds=_num(record.get("sim_seconds")),
                    counters=record.get("counters") or {},
                    failures=int(_num(record.get("failures"))),
                )
            )
        elif kind == "FragmentEnd":
            start = starts.pop(("f", record.get("query"), record.get("fragment")), {})
            records.append(
                TaskRecord(
                    query=record.get("query"),
                    stage="fragments",
                    task=record.get("fragment"),
                    partition=record.get("fragment"),
                    label=f"fragment-{record.get('fragment')}",
                    worker=record.get("worker"),
                    pid=record.get("pid"),
                    wall_start=_num(
                        start.get("wall_start", record.get("wall_end"))
                    ),
                    wall_end=_num(record.get("wall_end")),
                    sim_seconds=_num(record.get("sim_seconds")),
                    counters=record.get("counters") or {},
                )
            )
    return records


def stage_names(events: list[dict]) -> dict[tuple, str]:
    """(query, stage) -> submitted stage name (for table headers)."""
    names: dict[tuple, str] = {}
    for record in events:
        if record.get("event") == "StageSubmitted":
            names[(record.get("query"), record.get("stage"))] = record.get("name", "?")
    return names


def _query_headers(events: list[dict]) -> list[str]:
    lines = []
    for record in events:
        if record.get("event") == "QueryStart":
            lines.append(
                f"query {record.get('query')}: {record.get('name', '?')} "
                f"[{record.get('engine', '?')}]"
            )
        elif record.get("event") == "QueryEnd":
            sim = record.get("sim_seconds")
            rows = record.get("rows")
            extra = f", {rows} row(s)" if rows is not None else ""
            lines.append(
                f"query {record.get('query')} done: "
                f"{sim:.3f}s simulated{extra}"
                if isinstance(sim, (int, float))
                else f"query {record.get('query')} done"
            )
    return lines


# -- timelines -------------------------------------------------------------------


def render_timelines(tasks: list[TaskRecord], width: int = 64) -> str:
    """ASCII Gantt: one lane per worker/driver on the real wall clock."""
    timed = [t for t in tasks if t.wall_end > t.wall_start]
    if not timed:
        return "(no wall-clock task intervals recorded)"
    t0 = min(t.wall_start for t in timed)
    t1 = max(t.wall_end for t in timed)
    span = max(t1 - t0, 1e-9)
    lanes: dict[str, list[TaskRecord]] = {}
    for t in timed:
        lanes.setdefault(t.lane, []).append(t)
    label_width = max(len(name) for name in lanes)
    lines = [f"wall-clock timeline ({span * 1000:.1f} ms total, {width} cols)"]
    for name in sorted(lanes):
        cells = [False] * width
        busy = 0.0
        for t in lanes[name]:
            busy += t.wall_end - t.wall_start
            lo = int((t.wall_start - t0) / span * width)
            hi = int((t.wall_end - t0) / span * width)
            for i in range(max(0, lo), min(width, max(hi, lo + 1))):
                cells[i] = True
        bar = "".join("█" if cell else "·" for cell in cells)
        pct = min(100.0, busy / span * 100.0)
        lines.append(
            f"  {name:<{label_width}} |{bar}| "
            f"{len(lanes[name])} task(s), busy {pct:.0f}%"
        )
    return "\n".join(lines)


# -- stage summaries -------------------------------------------------------------


def render_stage_summary(
    tasks: list[TaskRecord], names: dict[tuple, str] | None = None
) -> str:
    """Per-stage table of task-duration statistics on the simulated clock."""
    if not tasks:
        return "(no completed tasks in the log)"
    names = names or {}
    groups: dict[tuple, list[TaskRecord]] = {}
    for t in tasks:
        groups.setdefault((t.query, t.stage), []).append(t)
    header = (
        f"{'stage':<22} {'tasks':>5} {'sim total':>10} "
        f"{'p50':>8} {'p95':>8} {'max':>8} {'skew':>6}"
    )
    lines = ["stage summary (simulated seconds)", header, "-" * len(header)]
    for (query, stage), group in sorted(
        groups.items(), key=lambda item: (item[0][0], str(item[0][1]))
    ):
        hist = Histogram([t.sim_seconds for t in group])
        summary = hist.summary()
        median = hist.percentile(50)
        skew = summary["max"] / median if median > 0 else 0.0
        name = names.get((query, stage), str(stage))
        lines.append(
            f"{f'q{query}/{name}':<22} {summary['count']:>5} "
            f"{summary['sum']:>10.3f} {summary['p50']:>8.3f} "
            f"{summary['p95']:>8.3f} {summary['max']:>8.3f} {skew:>6.2f}"
        )
    return "\n".join(lines)


# -- stragglers ------------------------------------------------------------------


def detect_stragglers(tasks: list[TaskRecord], k: float = 2.0) -> list[dict]:
    """Tasks whose simulated duration exceeds ``k×`` their stage median.

    Detection runs on the simulated clock so the verdict is a property of
    the *workload* (hot tiles), not of scheduling luck — the same log
    normalized across executor counts yields the same stragglers.
    """
    groups: dict[tuple, list[TaskRecord]] = {}
    for t in tasks:
        groups.setdefault((t.query, t.stage), []).append(t)
    found: list[dict] = []
    for (query, stage), group in sorted(
        groups.items(), key=lambda item: (item[0][0], str(item[0][1]))
    ):
        if len(group) < 2:
            continue
        median = median_sim_seconds([t.sim_seconds for t in group])
        if median <= 0:
            continue
        for t in sorted(group, key=lambda t: (-t.sim_seconds, str(t.task))):
            if t.sim_seconds > k * median:
                found.append(
                    {
                        "query": query,
                        "stage": stage,
                        "task": t.task,
                        "partition": t.partition,
                        "label": t.label,
                        "sim_seconds": t.sim_seconds,
                        "median_seconds": median,
                        "ratio": t.sim_seconds / median,
                    }
                )
    return found


def render_stragglers(
    stragglers: list[dict], k: float, names: dict[tuple, str] | None = None
) -> str:
    names = names or {}
    if not stragglers:
        return f"stragglers (> {k:g}x stage median): none"
    lines = [f"stragglers (> {k:g}x stage median):"]
    for s in stragglers:
        stage = names.get((s["query"], s["stage"]), str(s["stage"]))
        lines.append(
            f"  q{s['query']}/{stage} {s['label']} partition={s['partition']}: "
            f"{s['sim_seconds']:.3f}s = {s['ratio']:.1f}x median "
            f"({s['median_seconds']:.3f}s)"
        )
    return "\n".join(lines)


# -- utilization -----------------------------------------------------------------


def render_utilization(tasks: list[TaskRecord]) -> str:
    """Per-lane busy fraction and largest idle gap on the wall clock."""
    timed = [t for t in tasks if t.wall_end > t.wall_start]
    if not timed:
        return "(no wall-clock intervals for utilization)"
    t0 = min(t.wall_start for t in timed)
    t1 = max(t.wall_end for t in timed)
    span = max(t1 - t0, 1e-9)
    lanes: dict[str, list[TaskRecord]] = {}
    for t in timed:
        lanes.setdefault(t.lane, []).append(t)
    lines = ["utilization (wall clock)"]
    for name in sorted(lanes):
        intervals = sorted(
            (t.wall_start, t.wall_end) for t in lanes[name]
        )
        busy = 0.0
        gap = intervals[0][0] - t0
        cursor = t0
        for lo, hi in intervals:
            if lo > cursor:
                gap = max(gap, lo - cursor)
            busy += hi - max(lo, cursor)
            cursor = max(cursor, hi)
        gap = max(gap, t1 - cursor)
        pct = min(100.0, busy / span * 100.0)
        lines.append(
            f"  {name}: busy {pct:.0f}% of {span * 1000:.1f} ms, "
            f"largest idle gap {gap * 1000:.1f} ms"
        )
    return "\n".join(lines)


# -- recovery timelines ----------------------------------------------------------


def render_recovery(
    events: list[dict], names: dict[tuple, str] | None = None
) -> str | None:
    """Chronological view of recovery decisions, or ``None`` if there were none.

    Events are rendered in emission order — which is deterministic task
    order, not wall-clock order, so the same chaos run reads identically
    at every executor count.
    """
    names = names or {}
    recs = [e for e in events if e.get("event") in RECOVERY_EVENT_TYPES]
    if not recs:
        return None
    lines = [f"recovery timeline ({len(recs)} event(s))"]
    for e in recs:
        kind = e.get("event")
        query = e.get("query")
        stage = names.get((query, e.get("stage")), e.get("stage"))
        where = f"q{query}" + (f"/{stage}" if stage is not None else "")
        if kind == "TaskRetried":
            lines.append(
                f"  {where} task {e.get('task')}: retry #{e.get('attempt')} "
                f"after {e.get('reason')} on vworker {e.get('vworker')} "
                f"(backoff {e.get('backoff_seconds', 0.0):.3f}s)"
            )
        elif kind == "TaskSpeculated":
            lines.append(
                f"  {where} task {e.get('task')}: speculative duplicate "
                f"launched at {e.get('effective_seconds', 0.0):.3f}s effective "
                f"vs median {e.get('median_seconds', 0.0):.3f}s "
                f"(x{e.get('factor', 1.0):g} slowdown) — {e.get('winner')} won"
            )
        elif kind == "WorkerBlacklisted":
            lines.append(
                f"  {where}: vworker {e.get('vworker')} blacklisted after "
                f"{e.get('failures')} failure(s) (last: {e.get('reason')})"
            )
        elif kind == "StageRecomputed":
            lines.append(
                f"  {where}: shuffle {e.get('shuffle_id')} map partition "
                f"{e.get('map_partition')} recomputed from lineage "
                f"({e.get('reason')})"
            )
        elif kind == "QueryRestarted":
            lines.append(
                f"  {where}: restart #{e.get('restart')} after {e.get('reason')} "
                f"in fragment {e.get('fragment')}"
            )
    return "\n".join(lines)


# -- cache activity --------------------------------------------------------------


def render_cache_activity(events: list[dict]) -> str | None:
    """Per-kind table of cross-query cache traffic, or ``None`` if silent.

    The v3 cache events (:data:`~repro.obs.events.CACHE_EVENT_TYPES`) are
    the *only* place reuse bookkeeping appears in a log — they are dropped
    by ``normalize_events``, so this section summarises exactly what the
    byte-identity invariant excludes from query-visible state.
    """
    recs = [e for e in events if e.get("event") in CACHE_EVENT_TYPES]
    if not recs:
        return None
    by_kind: dict[str, dict[str, int]] = {}
    hit_bytes: dict[str, int] = {}
    for e in recs:
        kind = e.get("kind", "?")
        row = by_kind.setdefault(
            kind, {"CacheHit": 0, "CacheMiss": 0, "CacheEvict": 0}
        )
        row[e["event"]] += 1
        if e["event"] == "CacheHit":
            hit_bytes[kind] = hit_bytes.get(kind, 0) + int(e.get("size_bytes", 0))
    header = (
        f"{'kind':<24} {'hits':>6} {'misses':>6} {'evicts':>6} "
        f"{'hit rate':>8} {'hit bytes':>10}"
    )
    lines = ["cache activity (cross-query reuse)", header, "-" * len(header)]
    for kind in sorted(by_kind):
        row = by_kind[kind]
        lookups = row["CacheHit"] + row["CacheMiss"]
        rate = row["CacheHit"] / lookups if lookups else 0.0
        lines.append(
            f"{kind:<24} {row['CacheHit']:>6} {row['CacheMiss']:>6} "
            f"{row['CacheEvict']:>6} {rate:>7.0%} {hit_bytes.get(kind, 0):>10}"
        )
    return "\n".join(lines)


# -- the full report -------------------------------------------------------------


def monitor_report(events: list[dict], k: float = 2.0, width: int = 64) -> str:
    """The complete monitor view of one event stream.

    An empty or zero-task log degrades to a one-line "no tasks recorded"
    notice (plus any query headers / recovery / cache sections the log
    does contain) instead of four empty-placeholder tables.
    """
    tasks = parse_tasks(events)
    names = stage_names(events)
    sections = []
    headers = _query_headers(events)
    if headers:
        sections.append("\n".join(headers))
    if tasks:
        sections.append(render_stage_summary(tasks, names))
        sections.append(render_timelines(tasks, width=width))
        sections.append(
            render_stragglers(detect_stragglers(tasks, k=k), k, names)
        )
        sections.append(render_utilization(tasks))
    else:
        sections.append("no tasks recorded")
    recovery = render_recovery(events, names)
    if recovery:
        sections.append(recovery)
    cache_activity = render_cache_activity(events)
    if cache_activity:
        sections.append(cache_activity)
    heartbeats = [e for e in events if e.get("event") == "WorkerHeartbeat"]
    if heartbeats:
        workers = sorted(
            {(e.get("worker"), e.get("pid")) for e in heartbeats},
            key=lambda pair: (str(pair[0]), str(pair[1])),
        )
        sections.append(
            f"{len(heartbeats)} worker heartbeat(s) from "
            + ", ".join(f"worker-{w} (pid {p})" for w, p in workers)
        )
    return "\n\n".join(sections)
