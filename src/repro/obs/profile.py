"""Impala-style query profile trees.

Real Impala answers "where did the time go?" with a per-query runtime
profile: a tree of exec nodes annotated with rows produced, bytes read
and per-instance timing skew.  :class:`QueryProfile` is that artefact for
both reproduced engines, built *exactly* from the metrics the engines
already accrue — so a profile's per-phase simulated seconds sum to the
query's reported ``simulated_seconds`` (asserted by the test suite).

The tree is engine-shaped:

* SpatialSpark: query -> broadcast + jobs -> stages (with task-skew
  stats — max/median task seconds is the paper's straggler diagnostic);
* ISP-MC: query -> planning / fragment startup / execution (one child
  per fragment instance) / coordinator;
* standalone / in-memory joins: query -> scan/parse/build/probe phases.

``render()`` prints the ``EXPLAIN ANALYZE``-like text form;
``to_json()`` and ``to_chrome_trace()`` export it for tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ProfileNode", "QueryProfile", "annotate_profile_with_cache"]


def _fmt_units(value: float) -> str:
    """Compact human form for counter magnitudes (1234567 -> '1.23M')."""
    magnitude = abs(value)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if magnitude >= threshold:
            return f"{value / threshold:.2f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def _fmt_info(key: str, value: Any) -> str:
    if isinstance(value, float):
        if key.endswith(("seconds", "_s")):
            return f"{value:.3f}s"
        return f"{value:.3g}"
    return str(value)


@dataclass
class ProfileNode:
    """One node of the profile tree (query, stage, fragment, phase).

    ``sim_seconds`` is the node's *inclusive* simulated duration.
    Sequential children (the default) partition their parent's duration;
    ``concurrent=True`` marks children that ran in parallel (tasks in a
    stage, fragment instances in a query), whose durations overlap the
    parent's instead of summing to it.
    """

    name: str
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    info: dict[str, Any] = field(default_factory=dict)
    concurrent: bool = False
    children: list["ProfileNode"] = field(default_factory=list)

    def add_child(self, node: "ProfileNode") -> "ProfileNode":
        """Append and return a child node (for chaining)."""
        self.children.append(node)
        return node

    def to_dict(self) -> dict:
        """Recursive plain-dict form for JSON export."""
        return {
            "name": self.name,
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
            "counters": dict(self.counters),
            "info": dict(self.info),
            "concurrent": self.concurrent,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ProfileNode":
        """Rebuild a node (and its subtree) from :meth:`to_dict` output."""
        return cls(
            name=doc["name"],
            sim_seconds=doc.get("sim_seconds", 0.0),
            wall_seconds=doc.get("wall_seconds", 0.0),
            counters=dict(doc.get("counters", {})),
            info=dict(doc.get("info", {})),
            concurrent=doc.get("concurrent", False),
            children=[cls.from_dict(child) for child in doc.get("children", [])],
        )


class QueryProfile:
    """A rendered-able profile tree, optionally carrying its QueryMetrics."""

    def __init__(self, root: ProfileNode, metrics=None):
        self.root = root
        self.metrics = metrics  # the QueryMetrics the tree was derived from

    @property
    def total_simulated_seconds(self) -> float:
        """The query's simulated runtime (the root node's duration)."""
        return self.root.sim_seconds

    def phase_seconds(self) -> dict[str, float]:
        """Top-level breakdown: child name -> simulated seconds.

        Children sharing a name (e.g. several ``job-*`` stages renamed
        alike) accumulate.  For every engine-built profile these values
        sum to :attr:`total_simulated_seconds` exactly.
        """
        phases: dict[str, float] = {}
        for child in self.root.children:
            phases[child.name] = phases.get(child.name, 0.0) + child.sim_seconds
        return phases

    def find(self, name: str) -> ProfileNode | None:
        """Depth-first search for the first node called ``name``."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.name == name:
                return node
            stack.extend(reversed(node.children))
        return None

    # -- rendering -------------------------------------------------------------

    def render(self, counters: bool = True) -> str:
        """The ``EXPLAIN ANALYZE``-like text form of the profile."""
        root = self.root
        lines = [
            f"Query Profile: {root.name}  "
            f"(simulated total {root.sim_seconds:.3f}s)"
        ]
        if root.info:
            lines.append(
                "  " + "  ".join(
                    f"{k}={_fmt_info(k, v)}" for k, v in root.info.items()
                )
            )
        self._render_children(root, "", lines, counters)
        return "\n".join(lines)

    def _render_children(
        self, node: ProfileNode, prefix: str, lines: list[str], counters: bool
    ) -> None:
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            branch = "└── " if last else "├── "
            marker = "∥ " if child.concurrent and node.concurrent else ""
            info = ""
            if child.info:
                info = "  [" + ", ".join(
                    f"{k}={_fmt_info(k, v)}" for k, v in child.info.items()
                ) + "]"
            lines.append(
                f"{prefix}{branch}{marker}{child.name}: "
                f"{child.sim_seconds:.3f}s{info}"
            )
            deeper = prefix + ("    " if last else "│   ")
            if counters and child.counters:
                body = "  ".join(
                    f"{name}={_fmt_units(value)}"
                    for name, value in sorted(child.counters.items())
                )
                lines.append(f"{deeper}  {body}")
            self._render_children(child, deeper, lines, counters)

    # -- export ----------------------------------------------------------------

    def to_json(self) -> dict:
        """Plain-dict form (json.dumps-able)."""
        return {
            "total_simulated_seconds": self.total_simulated_seconds,
            "phases": self.phase_seconds(),
            "tree": self.root.to_dict(),
        }

    def to_dict(self) -> dict:
        """Alias of :meth:`to_json` — the archive form ``from_dict`` reads.

        Profiles archived next to an event log (``--profile-out``)
        round-trip exactly: ``QueryProfile.from_dict(p.to_dict())``
        renders the same text as ``p`` (the derived ``QueryMetrics``
        reference is not serialised).
        """
        return self.to_json()

    @classmethod
    def from_dict(cls, doc: dict) -> "QueryProfile":
        """Rebuild a profile from :meth:`to_dict` / :meth:`to_json` output."""
        return cls(ProfileNode.from_dict(doc["tree"]))

    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` form of the simulated timeline."""
        from repro.obs.export import profile_to_chrome_trace

        return profile_to_chrome_trace(self)


def annotate_profile_with_cache(profile: QueryProfile, stats) -> QueryProfile:
    """Attach cross-query cache totals to a profile, *out of band*.

    Engines never call this: the byte-identity invariant (DESIGN.md
    section 12) requires an engine-built profile to render identically
    whether the cache was on or off, so reuse bookkeeping can only be
    grafted on afterwards by tooling that opted in (``bench cache``, ad
    hoc analysis).  ``stats`` is a :class:`repro.cache.CacheStats` or its
    ``as_dict()`` form; the totals land in a ``cache`` info block on the
    root node (0 simulated seconds — reuse never bills the query).
    Returns ``profile`` for chaining.
    """
    doc = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
    node = profile.find("cache")
    if node is None:
        node = profile.root.add_child(ProfileNode(name="cache"))
    node.info.update(
        hits=int(doc.get("hits", 0)),
        misses=int(doc.get("misses", 0)),
        evictions=int(doc.get("evictions", 0)),
        puts=int(doc.get("puts", 0)),
        rejected=int(doc.get("rejected", 0)),
    )
    for kind, hits in sorted(dict(doc.get("hits_by_kind", {})).items()):
        node.info[f"hits[{kind}]"] = int(hits)
    return profile
