"""Observability: tracing, metrics registry, query profiles, exporters.

The paper's analysis (Tables 1-2, Figs 4-5, the JTS-vs-GEOS and
static-vs-dynamic discussions) is an exercise in explaining *where time
goes* inside two engines.  Real Impala ships per-query runtime profiles
and Spark ships an event log/UI for the same reason.  This package is the
reproduction's equivalent:

* :mod:`repro.obs.tracer` — hierarchical spans (query -> stage/fragment
  -> task -> phase) recording wall-clock *and* simulated seconds, with a
  zero-overhead no-op path when tracing is disabled;
* :mod:`repro.obs.registry` — a process-wide registry of named
  counters/gauges (HDFS reads, shuffle bytes, tiles joined, ...);
* :mod:`repro.obs.profile` — Impala-style query profile trees
  (``EXPLAIN ANALYZE``-like text per exec node / RDD stage, with rows
  produced, bytes read, vertices refined and task-skew statistics);
* :mod:`repro.obs.export` — JSON and Chrome ``trace_event`` exporters so
  a capture opens in ``chrome://tracing`` / Perfetto;
* :mod:`repro.obs.events` — a Spark-style structured event log (JSONL,
  versioned schema) that survives the process and replays later;
* :mod:`repro.obs.monitor` — the replay-driven cluster monitor: per-worker
  Gantt timelines, stage summary tables, straggler detection;
* :mod:`repro.obs.explain` — ``EXPLAIN`` / ``EXPLAIN ANALYZE``: annotated
  plan trees with per-operator cost estimates, measured-actual overlays
  and misestimate flags;
* :mod:`repro.obs.regress` — the perf-regression gate comparing fresh
  runs against the committed ``BENCH_*.json`` baselines.

Profiles are derived from the metrics the engines already accrue
(:mod:`repro.cluster.metrics`), so they are exact: a profile's per-phase
simulated seconds sum to the query's reported ``simulated_seconds``.
Spans additionally capture real wall-clock nesting when a
:class:`~repro.obs.tracer.Tracer` is enabled via :func:`tracing`.
"""

from repro.obs.events import (
    SCHEMA_VERSION,
    EventLog,
    get_event_log,
    install_event_log,
    logging_events,
    normalize_events,
    read_events,
    set_event_log,
)
from repro.obs.export import (
    profile_to_chrome_trace,
    spans_to_chrome_trace,
    spans_to_json,
    write_chrome_trace,
)
from repro.obs.explain import (
    ExplainNode,
    ExplainReport,
    explain,
    overlay_profile,
    report_from_profile,
)
from repro.obs.monitor import monitor_report
from repro.obs.profile import ProfileNode, QueryProfile
from repro.obs.regress import CheckRow, render_regress, run_regress
from repro.obs.registry import REGISTRY, Histogram, MetricsRegistry, collecting
from repro.obs.tracer import NULL_SPAN, Span, Tracer, get_tracer, set_tracer, tracing

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "tracing",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "collecting",
    "ProfileNode",
    "QueryProfile",
    "profile_to_chrome_trace",
    "spans_to_chrome_trace",
    "spans_to_json",
    "write_chrome_trace",
    "SCHEMA_VERSION",
    "EventLog",
    "get_event_log",
    "set_event_log",
    "install_event_log",
    "logging_events",
    "read_events",
    "normalize_events",
    "monitor_report",
    "ExplainNode",
    "ExplainReport",
    "explain",
    "overlay_profile",
    "report_from_profile",
    "CheckRow",
    "render_regress",
    "run_regress",
]
