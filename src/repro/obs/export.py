"""JSON and Chrome ``trace_event`` exporters.

Two timelines can be exported:

* **simulated** — :func:`profile_to_chrome_trace` lays a
  :class:`~repro.obs.profile.QueryProfile` out on the simulated clock
  (sequential children back to back, concurrent children side by side on
  their own rows), which visualises makespans and stragglers;
* **wall** — :func:`spans_to_chrome_trace` exports a
  :class:`~repro.obs.tracer.Tracer`'s span forest on the real clock.

Both produce the JSON object format of the Trace Event spec
(``{"traceEvents": [...]}`` with ``ph: "X"`` complete events, timestamps
in microseconds), which loads directly in ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_.
"""

from __future__ import annotations

import json
import zlib
from typing import Iterable

from repro.obs.profile import ProfileNode, QueryProfile
from repro.obs.tracer import Span

__all__ = [
    "profile_to_chrome_trace",
    "spans_to_chrome_trace",
    "spans_to_json",
    "write_chrome_trace",
]

_US = 1_000_000.0  # trace_event timestamps are microseconds


def _event(name: str, category: str, ts: float, dur: float,
           pid: int, tid: int, args: dict) -> dict:
    return {
        "name": name,
        "cat": category,
        "ph": "X",
        "ts": round(ts, 3),
        "dur": round(dur, 3),
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def profile_to_chrome_trace(profile: QueryProfile | ProfileNode,
                            pid: int = 1) -> dict:
    """Lay a profile's simulated timeline out as trace events.

    Sequential children are placed back to back from their parent's
    start; ``concurrent`` children all start with their parent, each on
    its own ``tid`` row — so a stage's straggler sticks out exactly as it
    does in the paper's Fig 5 discussion.
    """
    root = profile.root if isinstance(profile, QueryProfile) else profile
    events: list[dict] = []
    # Distinct engines land on distinct tid ranges, so traces from several
    # engines merged into one file do not stack on the same rows.  The
    # base is a stable hash of the root's engine tag (0 when untagged).
    engine = root.info.get("engine") if root.info else None
    base_tid = (zlib.crc32(str(engine).encode()) % 97) * 100 if engine else 0
    next_tid = [base_tid]

    def walk(node: ProfileNode, start_s: float, tid: int) -> None:
        args: dict = {"sim_seconds": node.sim_seconds}
        if node.counters:
            args["counters"] = dict(node.counters)
        if node.info:
            args["info"] = dict(node.info)
        events.append(
            _event(node.name, "simulated", start_s * _US,
                   node.sim_seconds * _US, pid, tid, args)
        )
        if node.concurrent:
            for child in node.children:
                next_tid[0] += 1
                walk(child, start_s, next_tid[0])
        else:
            cursor = start_s
            for child in node.children:
                walk(child, cursor, tid)
                cursor += child.sim_seconds

    walk(root, 0.0, base_tid)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "source": "repro.obs"},
    }


def spans_to_chrome_trace(spans: Iterable[Span], pid: int = 2) -> dict:
    """Export tracer spans (real wall clock) as trace events.

    Spans grafted back from pool workers carry ``worker``/``worker_pid``
    attrs (stamped by the runtime's observability shipping); those spans
    — and their children — are laid out on the worker's real ``pid`` with
    the worker index as ``tid``, one Perfetto lane per worker.  Spans
    without placement attrs keep the caller's ``pid`` (driver lane).
    """
    roots = list(spans)
    events: list[dict] = []
    base = min((s.start_wall for s in roots), default=0.0)

    def walk(span: Span, span_pid: int, tid: int) -> None:
        if span.attrs:
            span_pid = span.attrs.get("worker_pid", span_pid)
            tid = span.attrs.get("worker", tid)
        args: dict = {"sim_seconds": span.sim_seconds}
        if span.attrs:
            args["attrs"] = dict(span.attrs)
        events.append(
            _event(span.name, span.category, (span.start_wall - base) * _US,
                   span.wall_seconds * _US, span_pid, tid, args)
        )
        for child in span.children:
            walk(child, span_pid, tid)

    for i, root in enumerate(roots):
        walk(root, pid, i)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "wall", "source": "repro.obs"},
    }


def spans_to_json(spans: Iterable[Span]) -> list[dict]:
    """Recursive plain-dict form of a span forest."""
    return [span.to_dict() for span in spans]


def write_chrome_trace(path: str, *traces: dict) -> None:
    """Write one or more trace dicts to ``path`` as a single JSON file.

    Multiple traces (e.g. a simulated profile plus a wall-clock span
    capture) are merged into one event stream; their distinct ``pid``
    values keep them on separate tracks in the viewer.
    """
    merged: dict = {"traceEvents": [], "displayTimeUnit": "ms"}
    for trace in traces:
        merged["traceEvents"].extend(trace.get("traceEvents", []))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=1)
