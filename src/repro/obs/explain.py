"""EXPLAIN / EXPLAIN ANALYZE: annotated plan trees with estimate overlays.

The paper attributes the SpatialSpark-vs-ISP-MC gap to per-operator
costs (refinement engine churn, static-vs-dynamic scheduling) that only
become visible when plan-level *estimates* can be compared against
measured *actuals*.  This module is that comparison surface:

* :func:`explain` renders the plan the optimizer would pick for a query
  — method, partitioner, tile count, broadcast-vs-shuffle distribution,
  cache residency, and per-operator cost-model estimates for rows /
  bytes / seconds — **without executing anything**;
* ``spatial_join(..., explain="analyze")`` executes the query and calls
  :func:`overlay_profile` to graft the measured actuals from the
  :class:`~repro.obs.profile.QueryProfile` onto the same tree (rows
  produced, bytes shuffled, simulated seconds, straggler skew), flagging
  any operator whose estimate was off by more than a configurable ratio;
* :func:`report_from_profile` wraps any engine profile (SpatialSpark /
  ISP-MC trees included) into the same :class:`ExplainReport` shape, so
  one renderer serves all three substrates.

An :class:`ExplainReport` is machine-readable (``to_json`` — the
document ``bench regress`` archives as a CI artifact) and human-readable
(``render`` — a ``bench monitor``-style table).  Its per-operator
deltas feed :class:`~repro.optimizer.calibration.CalibrationLog`.

Everything here is strictly off the hot path: with ``explain="off"``
(the default) none of this module is imported, and query output stays
byte-identical to a build without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ReproError

__all__ = [
    "ExplainNode",
    "ExplainReport",
    "explain",
    "build_plan_report",
    "overlay_profile",
    "report_from_profile",
    "DEFAULT_MISESTIMATE_RATIO",
    "EXPLAIN_SCHEMA_VERSION",
]

EXPLAIN_SCHEMA_VERSION = 1
GENERATED_BY = "repro.obs.explain/1"
# An operator's estimate is "flagged" when actual and estimate disagree
# by more than this factor — provided the larger of the two clears the
# per-metric absolute floor below (tiny quantities flap harmlessly).
DEFAULT_MISESTIMATE_RATIO = 4.0
_METRIC_FLOORS = {"seconds": 0.05, "rows": 16.0, "bytes": 4096.0}
# Profile counter -> report "bytes" metric, first match wins.
_BYTES_COUNTERS = ("shuffle_bytes", "broadcast_bytes", "wkt_bytes", "hdfs_bytes")


@dataclass
class ExplainNode:
    """One operator of the annotated plan tree.

    ``estimate`` and ``actual`` are small ``{"rows": .., "bytes": ..,
    "seconds": ..}`` dicts (each key optional); ``actual`` is ``None``
    until an ANALYZE overlay runs.  ``flags`` holds human-readable
    misestimate verdicts; ``info`` carries operator annotations (tile
    counts, skew, cache residency...).
    """

    name: str
    info: dict[str, Any] = field(default_factory=dict)
    estimate: dict[str, float] = field(default_factory=dict)
    actual: dict[str, float] | None = None
    flags: list[str] = field(default_factory=list)
    children: list["ExplainNode"] = field(default_factory=list)

    def add_child(self, node: "ExplainNode") -> "ExplainNode":
        self.children.append(node)
        return node

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "info": dict(self.info),
            "estimate": dict(self.estimate),
            "actual": None if self.actual is None else dict(self.actual),
            "flags": list(self.flags),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ExplainNode":
        return cls(
            name=doc["name"],
            info=dict(doc.get("info", {})),
            estimate=dict(doc.get("estimate", {})),
            actual=(
                None if doc.get("actual") is None else dict(doc["actual"])
            ),
            flags=list(doc.get("flags", [])),
            children=[cls.from_dict(c) for c in doc.get("children", [])],
        )


@dataclass
class ExplainReport:
    """The full EXPLAIN (ANALYZE) artifact for one query."""

    root: ExplainNode
    method: str
    mode: str = "plan"  # "plan" (estimates only) | "analyze" (overlaid)
    ratio: float = DEFAULT_MISESTIMATE_RATIO
    plan: dict[str, Any] = field(default_factory=dict)

    def operators(self) -> Iterator[ExplainNode]:
        """Every node below the root, depth-first."""
        stack = list(reversed(self.root.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find(self, name: str) -> ExplainNode | None:
        for node in self.operators():
            if node.name == name:
                return node
        return None

    def misestimates(self) -> list[dict]:
        """Flagged operators: [{operator, flag}], in tree order."""
        found = []
        for node in [self.root, *self.operators()]:
            for flag in node.flags:
                found.append({"operator": node.name, "flag": flag})
        return found

    @property
    def total_estimated_seconds(self) -> float:
        return self.root.estimate.get("seconds", 0.0)

    @property
    def total_actual_seconds(self) -> float | None:
        if self.root.actual is None:
            return None
        return self.root.actual.get("seconds")

    # -- serialisation ----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema_version": EXPLAIN_SCHEMA_VERSION,
            "generated_by": GENERATED_BY,
            "mode": self.mode,
            "method": self.method,
            "misestimate_ratio": self.ratio,
            "plan": dict(self.plan),
            "misestimates": self.misestimates(),
            "tree": self.root.to_dict(),
        }

    @classmethod
    def from_json(cls, doc: dict) -> "ExplainReport":
        version = doc.get("schema_version")
        if version != EXPLAIN_SCHEMA_VERSION:
            raise ReproError(
                f"ExplainReport schema_version {version!r} != "
                f"{EXPLAIN_SCHEMA_VERSION}"
            )
        return cls(
            root=ExplainNode.from_dict(doc["tree"]),
            method=doc["method"],
            mode=doc.get("mode", "plan"),
            ratio=doc.get("misestimate_ratio", DEFAULT_MISESTIMATE_RATIO),
            plan=dict(doc.get("plan", {})),
        )

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        """The monitor-style text form: header, operator table, flags."""
        analyze = self.mode == "analyze"
        title = "EXPLAIN ANALYZE" if analyze else "EXPLAIN"
        header = f"{title} {self.root.name}  method={self.method}"
        est_total = self.total_estimated_seconds
        act_total = self.total_actual_seconds
        header += f"  (est {est_total:.3f}s"
        if act_total is not None:
            header += f", actual {act_total:.3f}s"
        header += ")"
        lines = [header]
        annotations = []
        for key in ("distribution", "partitioner", "tiles", "split_tiles",
                    "workers", "nodes"):
            if key in self.plan:
                annotations.append(f"{key}={self.plan[key]}")
        cache = self.plan.get("cache")
        if isinstance(cache, dict) and cache.get("enabled"):
            state = "warm" if cache.get("build_resident") else "cold"
            annotations.append(f"cache={state}")
        if annotations:
            lines.append("  " + "  ".join(annotations))
        costs = self.plan.get("costs")
        if isinstance(costs, dict) and costs:
            lines.append(
                "  plan costs: "
                + "  ".join(f"{m}={s:.3f}s" for m, s in costs.items())
            )
        col = (
            f"{'operator':<12} {'est s':>9} {'act s':>9} "
            f"{'est rows':>10} {'act rows':>10} {'est bytes':>11} "
            f"{'act bytes':>11} {'skew':>6}"
        )
        lines += ["", col, "-" * len(col)]

        def cell(values: dict[str, float] | None, metric: str,
                 fmt: str) -> str:
            if values is None or metric not in values:
                return "-"
            return format(values[metric], fmt)

        for node in self.root.children:
            skew = node.info.get("skew")
            skew_cell = f"{skew:.2f}" if skew is not None else "-"
            lines.append(
                f"{node.name:<12} "
                f"{cell(node.estimate, 'seconds', '.3f'):>9} "
                f"{cell(node.actual, 'seconds', '.3f'):>9} "
                f"{cell(node.estimate, 'rows', '.0f'):>10} "
                f"{cell(node.actual, 'rows', '.0f'):>10} "
                f"{cell(node.estimate, 'bytes', '.0f'):>11} "
                f"{cell(node.actual, 'bytes', '.0f'):>11} "
                f"{skew_cell:>6}"
            )
        flagged = self.misestimates()
        if analyze:
            lines.append("")
            if flagged:
                lines.append(f"misestimates (> {self.ratio:g}x):")
                lines.extend(
                    f"  {item['operator']}: {item['flag']}" for item in flagged
                )
            else:
                lines.append(f"misestimates (> {self.ratio:g}x): none")
        calibration = self.plan.get("calibration")
        if calibration:
            lines.append(
                "calibration factors (recorded, not applied): "
                + "  ".join(f"{k}={v:.2f}x" for k, v in calibration.items())
            )
        return "\n".join(lines)


# -- estimate-tree construction ---------------------------------------------


def _stage_estimates(method: str, terms: dict[str, float], stats,
                     parse_seconds: float) -> list[tuple[str, dict, dict]]:
    """(name, estimate, info) per operator, in execution order.

    Operator names deliberately match the stage names the executed query
    reports in its :class:`QueryProfile` (``parse``/``build``/``probe``
    for broadcast, ``parse``/``shuffle``/``join`` for partitioned, ...)
    so the ANALYZE overlay lines up term by term.
    """
    left, right = stats.left, stats.right
    est_bytes = left.estimated_bytes + right.estimated_bytes
    pairs = stats.estimated_pairs
    parse = (
        "parse",
        {
            "rows": float(left.count + right.count),
            "bytes": est_bytes,
            "seconds": parse_seconds,
        },
        {},
    )
    if method == "broadcast":
        # setup and ship are driver-side pricing terms the local execution
        # never bills; folding them into build keeps the root estimate
        # equal to the plan's priced total.
        return [
            parse,
            (
                "build",
                {"rows": float(right.count),
                 "bytes": right.estimated_bytes,
                 "seconds": terms["setup"] + terms["build"] + terms["ship"]},
                {"operator": "index build + broadcast (right side)"},
            ),
            (
                "probe",
                {"rows": pairs, "seconds": terms["probe"]},
                {"operator": "parallel index probes (left side)"},
            ),
        ]
    if method == "partitioned":
        return [
            parse,
            (
                "shuffle",
                {"bytes": est_bytes * 1.3, "seconds": terms["shuffle"]},
                {"operator": "route both sides to tiles"},
            ),
            (
                "join",
                {"rows": pairs, "seconds": terms["setup"] + terms["join"]},
                {"operator": "per-tile index joins"},
            ),
        ]
    if method == "dual-tree":
        return [
            parse,
            (
                "build",
                {"rows": float(left.count + right.count),
                 "seconds": terms["setup"] + terms["build"]},
                {"operator": "pack both R-trees"},
            ),
            (
                "join",
                {"rows": pairs, "seconds": terms["join"]},
                {"operator": "synchronized traversal"},
            ),
        ]
    # naive
    return [
        parse,
        (
            "join",
            {"rows": pairs, "seconds": terms["join"]},
            {"operator": "nested-loop filter+refine"},
        ),
    ]


def build_plan_report(
    plan,
    method: str | None = None,
    model=None,
    engine: str = "fast",
    parse_wkt: bool = False,
    ratio: float = DEFAULT_MISESTIMATE_RATIO,
    cache_info: dict | None = None,
    query_name: str = "spatial-join",
) -> ExplainReport:
    """Estimate-only :class:`ExplainReport` from a priced plan.

    ``plan`` is the optimizer's :class:`~repro.optimizer.PlanChoice`;
    ``method`` overrides the chosen strategy when the caller forced one
    (the forced plan is annotated with the same stats-driven estimates).
    ``parse_wkt`` marks inputs that arrive as WKT strings — only then is
    parse time estimated (geometry objects parse for free; the byte
    estimate stands in for the unknown WKT character count).
    """
    from repro.cluster.model import CostModel, Resource
    from repro.optimizer.planner import estimate_plan_terms

    model = model or CostModel()
    method = method or plan.method
    stats = plan.stats
    all_terms = estimate_plan_terms(
        stats,
        model,
        workers=plan.workers,
        nodes=plan.nodes,
        engine=engine,
        histogram=plan.histogram,
        cached_build=plan.cached_build,
    )
    terms = all_terms.get(method, all_terms["naive"])
    parse_seconds = 0.0
    if parse_wkt:
        parse_seconds = model.task_seconds(
            {Resource.WKT_BYTES: stats.left.estimated_bytes
             + stats.right.estimated_bytes}
        )
    stages = _stage_estimates(method, terms, stats, parse_seconds)
    root = ExplainNode(
        name=query_name,
        estimate={
            "seconds": sum(est.get("seconds", 0.0) for _, est, _ in stages)
        },
        info={"method": method},
    )
    for name, estimate, info in stages:
        root.add_child(ExplainNode(name=name, estimate=estimate, info=info))
    plan_info: dict[str, Any] = {
        "method": method,
        "chosen": plan.method,
        "workers": plan.workers,
        "nodes": plan.nodes,
        "costs": {m: round(s, 6) for m, s in plan.costs.items()},
        "distribution": {
            "broadcast": "broadcast",
            "partitioned": "shuffle",
        }.get(method, "local"),
        "stats": stats.to_info(),
    }
    if plan.partitioning is not None:
        plan_info["partitioner"] = "sort-tile+hot-split"
        plan_info["tiles"] = len(plan.partitioning)
        plan_info["split_tiles"] = plan.split_tiles
        if method == "partitioned":
            join = root.children[-1]
            join.info["tiles"] = len(plan.partitioning)
            join.info["split_tiles"] = plan.split_tiles
    if plan.cached_build:
        plan_info["cached_build"] = True
    if plan.calibration:
        plan_info["calibration"] = dict(plan.calibration)
    if cache_info is not None:
        plan_info["cache"] = dict(cache_info)
    return ExplainReport(
        root=root, method=method, mode="plan", ratio=ratio, plan=plan_info
    )


# -- the ANALYZE overlay ------------------------------------------------------


def _actuals_from_counters(counters: dict) -> dict[str, float]:
    actual: dict[str, float] = {}
    if "rows_out" in counters:
        actual["rows"] = float(counters["rows_out"])
    for key in _BYTES_COUNTERS:
        if key in counters:
            actual["bytes"] = float(counters[key])
            break
    return actual


def _flag_node(node: ExplainNode, ratio: float) -> None:
    """Compare estimate vs actual per metric and record misestimates."""
    if node.actual is None:
        if node.estimate:
            node.flags.append("never executed (no actuals recorded)")
        return
    for metric, estimate in sorted(node.estimate.items()):
        actual = node.actual.get(metric)
        if actual is None:
            continue
        low, high = sorted((float(estimate), float(actual)))
        if high <= _METRIC_FLOORS.get(metric, 0.0):
            continue  # both sides tiny: no signal in the ratio
        observed = high / max(low, 1e-12)
        if observed > ratio:
            node.flags.append(
                f"{metric} misestimate: est {estimate:g} vs actual "
                f"{actual:g} ({observed:.1f}x)"
            )


def overlay_profile(report: ExplainReport, profile, ratio: float | None = None,
                    cache_info: dict | None = None) -> ExplainReport:
    """Graft measured actuals from a :class:`QueryProfile` onto ``report``.

    Every top-level profile stage lands on the estimate node with the
    same name (stages the estimate tree did not predict are appended with
    an empty estimate), so the per-operator ``actual["seconds"]`` always
    sum to the profile's engine total — the accounting identity
    ``bench regress`` pins.  Misestimates beyond ``ratio`` are flagged.
    """
    if ratio is not None:
        report.ratio = ratio
    report.mode = "analyze"
    report.root.actual = {"seconds": profile.total_simulated_seconds}
    by_name = {node.name: node for node in report.root.children}
    for child in profile.root.children:
        node = by_name.get(child.name)
        if node is None:
            node = report.root.add_child(ExplainNode(name=child.name))
            by_name[child.name] = node
        actual = _actuals_from_counters(child.counters)
        actual["seconds"] = child.sim_seconds
        # Merge: several profile stages with one name (job-* trees)
        # accumulate into the same operator row.
        if node.actual is None:
            node.actual = actual
        else:
            for key, value in actual.items():
                node.actual[key] = node.actual.get(key, 0.0) + value
        for key in ("tasks", "skew", "max_task_seconds",
                    "median_task_seconds", "makespan_seconds"):
            if key in child.info:
                node.info[key] = child.info[key]
    if cache_info is not None:
        report.plan["cache"] = dict(cache_info)
    for node in [report.root, *report.root.children]:
        node.flags = [f for f in node.flags if "misestimate" not in f]
        _flag_node(node, report.ratio)
    return report


def report_from_profile(profile, ratio: float = DEFAULT_MISESTIMATE_RATIO,
                        method: str | None = None) -> ExplainReport:
    """Actuals-only :class:`ExplainReport` from any engine profile.

    This is the engine-side entry point: SpatialSpark and ISP-MC runs
    produce :class:`QueryProfile` trees with no optimizer estimates, but
    their stage structure, counters and skew statistics still render and
    serialise through the same report machinery (estimate columns show
    ``-``).  When the profile root carries ``plan_est_seconds`` (the
    core API's auto-planned runs), it becomes the root estimate so the
    top-line est-vs-actual comparison still works.
    """
    root_info = dict(profile.root.info)
    method = method or str(root_info.get("method", root_info.get("engine", "?")))
    root = ExplainNode(
        name=profile.root.name,
        info=root_info,
        actual={"seconds": profile.total_simulated_seconds},
    )
    if "plan_est_seconds" in root_info:
        root.estimate["seconds"] = float(root_info["plan_est_seconds"])
    report = ExplainReport(
        root=root, method=method, mode="analyze", ratio=ratio,
        plan={"method": method, "source": "profile"},
    )
    for child in profile.root.children:
        actual = _actuals_from_counters(child.counters)
        actual["seconds"] = child.sim_seconds
        info = {
            key: child.info[key]
            for key in ("tasks", "skew", "max_task_seconds",
                        "median_task_seconds", "makespan_seconds",
                        "straggler_seconds", "imbalance")
            if key in child.info
        }
        root.add_child(ExplainNode(name=child.name, actual=actual, info=info))
    _flag_node(root, ratio)
    return report


# -- plan-only entry point ----------------------------------------------------


def explain(left, right, config=None, **kwargs) -> ExplainReport:
    """Render the plan :func:`repro.core.api.spatial_join` would run,
    without executing it.

    Accepts the same inputs and knobs as ``spatial_join`` (loose keywords
    or ``config=JoinConfig(...)``).  Both collections are normalised and
    sampled — that is the whole cost; no index is built, nothing is
    joined, no events are emitted.  Cache residency of the broadcast
    build side is peeked (a plain containment test that counts neither a
    hit nor a miss) so a warm cache shows up as ``cache=warm`` and a
    discounted build estimate, exactly as the executed auto plan would
    see it.
    """
    from repro.cache import cache_for, fingerprint_entries
    from repro.cluster.model import CostModel
    from repro.core.api import JoinConfig, _coerce_operator, _normalise
    from repro.optimizer import choose_plan

    if config is not None:
        cfg = config
    else:
        kwargs.pop("explain", None)
        cfg = JoinConfig(**kwargs)
    op = _coerce_operator(cfg.operator)
    left = left if isinstance(left, list) else list(left)
    right = right if isinstance(right, list) else list(right)
    parse_wkt = any(isinstance(g, str) for _, g in left) or any(
        isinstance(g, str) for _, g in right
    )
    left_entries = _normalise(left, None)
    right_entries = _normalise(right, None)
    model = cfg.cost_model or CostModel()
    cache = cache_for(cfg.resolved_runtime())
    cached_build = False
    if cache is not None:
        key = fingerprint_entries(
            right_entries, "broadcast-index", op.value, float(cfg.radius),
            cfg.engine,
        )
        cached_build = key in cache
    plan = choose_plan(
        left_entries,
        right_entries,
        operator=op,
        radius=cfg.radius,
        cost_model=model,
        workers=cfg.workers,
        num_tiles=cfg.num_tiles,
        skew_factor=cfg.skew_factor,
        engine=cfg.engine,
        sample_size=cfg.sample_size,
        cached_build=cached_build,
    )
    method = None
    if cfg.method not in ("auto",):
        method = "broadcast" if cfg.method == "index" else cfg.method
    cache_info = {
        "enabled": cache is not None,
        "build_resident": cached_build,
    }
    return build_plan_report(
        plan,
        method=method,
        model=model,
        engine=cfg.engine,
        parse_wkt=parse_wkt,
        ratio=cfg.explain_ratio,
        cache_info=cache_info,
    )
