"""Perf-regression gate: fresh measurements vs committed BENCH baselines.

``python -m repro.bench regress`` re-runs the cheap deterministic
benchmarks, checks the live EXPLAIN ANALYZE invariants, validates every
committed ``BENCH_*.json`` artifact, and prints one regression table.
Any ``FAIL`` row makes the command exit non-zero — the CI
``regress-smoke`` job turns a perf or correctness regression into a red
build instead of a silently drifting baseline.

Three kinds of checks, weakest evidence last:

* **deterministic re-runs** — the optimizer study is a pure function of
  the workload generators and the cost model, so the fresh run must
  reproduce ``BENCH_optimizer.json`` *exactly* (chosen methods, priced
  seconds, skew makespans).  This is the backbone: a doctored baseline,
  a stale schema, or a genuine planner change all trip it.
* **live invariants** — a fresh ``explain="analyze"`` run on the
  ``hotspot-nycb`` skew workload must produce per-operator actuals that
  sum to the engine's profile total, and must flag the canned
  build-cost misestimate; fresh kernel/columnar runs must keep batch
  results identical to scalar ground truth.
* **noise-tolerant wall-clock comparisons** — measured speedups are
  compared against the committed ones with a relative slack *plus* a
  minimum absolute floor (``max(rel * baseline, floor)``), so CI jitter
  cannot flake the gate but an order-of-magnitude loss still fails.

``--quick`` (the CI mode) skips the slower fresh runs (cache, columnar)
and checks their committed artifacts' internal invariants instead.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

__all__ = [
    "CheckRow",
    "BASELINE_FILES",
    "REGRESS_SCHEMA_VERSION",
    "load_baselines",
    "run_regress",
    "render_regress",
    "within_slack",
    "at_least",
]

REGRESS_SCHEMA_VERSION = 1
BASELINE_FILES = {
    "optimizer": "BENCH_optimizer.json",
    "kernels": "BENCH_kernels.json",
    "parallel": "BENCH_parallel.json",
    "cache": "BENCH_cache.json",
    "columnar": "BENCH_columnar.json",
}
# The skew workload the live explain checks run on; scale keeps the
# whole check under a couple of seconds.
_EXPLAIN_WORKLOAD = "hotspot-nycb"
_EXPLAIN_SCALE = 0.05


@dataclass
class CheckRow:
    """One line of the regression table."""

    baseline: str  # which artifact/surface the check belongs to
    metric: str
    status: str  # "ok" | "FAIL" | "skip" | "info"
    baseline_value: object = None
    current_value: object = None
    detail: str = ""

    def to_json(self) -> dict:
        return {
            "baseline": self.baseline,
            "metric": self.metric,
            "status": self.status,
            "baseline_value": self.baseline_value,
            "current_value": self.current_value,
            "detail": self.detail,
        }


def within_slack(baseline: float, current: float, rel: float,
                 floor: float) -> bool:
    """Lower-is-better: ``current`` may exceed ``baseline`` by at most
    ``max(rel * baseline, floor)``."""
    return current <= baseline + max(rel * baseline, floor)


def at_least(baseline: float, current: float, rel: float,
             floor: float) -> bool:
    """Higher-is-better (speedups): ``current`` may fall short of
    ``baseline`` by at most ``max(rel * baseline, floor)``."""
    return current >= baseline - max(rel * baseline, floor)


# -- baseline loading --------------------------------------------------------


def load_baselines(baseline_dir: str = ".") -> tuple[dict, list[CheckRow]]:
    """Read and validate every known baseline file.

    Returns the parsed documents keyed by short name, plus one schema
    check row per file: missing files are ``skip`` (a repo need not
    commit every benchmark), unreadable or wrongly-stamped files are
    ``FAIL`` — a foreign or pre-schema baseline must not silently pass.
    """
    from repro.bench.report import BENCH_SCHEMA_VERSION

    docs: dict[str, dict] = {}
    rows: list[CheckRow] = []
    for name, filename in BASELINE_FILES.items():
        path = os.path.join(baseline_dir, filename)
        if not os.path.exists(path):
            rows.append(
                CheckRow(name, "schema", "skip", detail=f"{filename} not found")
            )
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            rows.append(
                CheckRow(name, "schema", "FAIL", detail=f"unreadable: {error}")
            )
            continue
        version = doc.get("schema_version")
        generated = doc.get("generated_by", "")
        if version != BENCH_SCHEMA_VERSION:
            rows.append(
                CheckRow(
                    name, "schema", "FAIL",
                    baseline_value=BENCH_SCHEMA_VERSION, current_value=version,
                    detail=f"{filename}: schema_version mismatch",
                )
            )
            continue
        if not str(generated).startswith("repro.bench/"):
            rows.append(
                CheckRow(
                    name, "schema", "FAIL", current_value=generated,
                    detail=f"{filename}: foreign generated_by",
                )
            )
            continue
        rows.append(CheckRow(name, "schema", "ok", current_value=version))
        docs[name] = doc
    return docs, rows


# -- individual checks -------------------------------------------------------


def check_explain(explain_out: str | None = None) -> list[CheckRow]:
    """Live EXPLAIN ANALYZE invariants on the canned skew workload."""
    from repro.bench.workloads import materialize
    from repro.core.api import JoinConfig, spatial_join

    rows: list[CheckRow] = []
    wl = materialize(_EXPLAIN_WORKLOAD, scale=_EXPLAIN_SCALE)
    result = spatial_join(
        wl.left.records,
        wl.right.records,
        config=JoinConfig(operator=wl.workload.operator, explain="analyze"),
    )
    report = result.explain_report
    total = report.total_actual_seconds
    children = sum(
        (node.actual or {}).get("seconds", 0.0)
        for node in report.root.children
    )
    ok = abs(total - children) <= 1e-9 * max(1.0, abs(total))
    rows.append(
        CheckRow(
            "explain", "actuals-sum-match", "ok" if ok else "FAIL",
            baseline_value=round(total, 6), current_value=round(children, 6),
            detail=f"{_EXPLAIN_WORKLOAD}@{_EXPLAIN_SCALE}: per-operator "
                   "actuals vs profile total",
        )
    )
    flagged = report.misestimates()
    rows.append(
        CheckRow(
            "explain", "seeded-misestimate", "ok" if flagged else "FAIL",
            current_value=len(flagged),
            detail=(
                "; ".join(f"{f['operator']}: {f['flag']}" for f in flagged[:2])
                if flagged
                else "skew case produced no misestimate flag"
            ),
        )
    )
    if explain_out:
        with open(explain_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=1, sort_keys=True)
            handle.write("\n")
    return rows


def check_optimizer(base: dict) -> list[CheckRow]:
    """Exact reproduction of the deterministic optimizer study."""
    from repro.bench.optimizer_study import optimizer_study

    fresh = optimizer_study(scale=base["scale"], nodes=base["nodes"])
    rows: list[CheckRow] = []
    fresh_by_wl = {p["workload"]: p for p in fresh["plans"]}
    for plan in base.get("plans", []):
        workload = plan.get("workload", "?")
        current = fresh_by_wl.get(workload)
        if current is None:
            rows.append(
                CheckRow("optimizer", f"plan:{workload}", "FAIL",
                         detail="workload missing from fresh study")
            )
            continue
        same = (
            current["method"] == plan["method"]
            and current["est_seconds"] == plan["est_seconds"]
        )
        rows.append(
            CheckRow(
                "optimizer", f"plan:{workload}", "ok" if same else "FAIL",
                baseline_value=plan["method"], current_value=current["method"],
                detail="deterministic: method + priced seconds must match"
                       " exactly",
            )
        )
    skew_base = base.get("skew", {})
    skew_fresh = fresh.get("skew", {})
    same_skew = (
        skew_base.get("makespan_before") == skew_fresh.get("makespan_before")
        and skew_base.get("makespan_after") == skew_fresh.get("makespan_after")
    )
    rows.append(
        CheckRow(
            "optimizer", "skew-makespans", "ok" if same_skew else "FAIL",
            baseline_value=(skew_base.get("makespan_after") or {}).get("dynamic"),
            current_value=(skew_fresh.get("makespan_after") or {}).get("dynamic"),
            detail="hot-tile splitting study must reproduce exactly",
        )
    )
    return rows


def check_kernels(base: dict, quick: bool) -> list[CheckRow]:
    """Fresh batch-vs-scalar kernel run: identity hard, speedup sloppy."""
    from repro.bench.kernels import run_kernels_benchmark

    rows: list[CheckRow] = []
    for kernel, entry in sorted(base.get("kernels", {}).items()):
        if not entry.get("identical", False):
            rows.append(
                CheckRow("kernels", f"baseline:{kernel}", "FAIL",
                         detail="committed baseline records identical=false")
            )
    points = 20_000 if quick else int(base.get("points", 100_000))
    repeat = 1 if quick else int(base.get("repeat", 3))
    fresh = run_kernels_benchmark(points=points, repeat=repeat)
    for kernel, entry in sorted(fresh.get("kernels", {}).items()):
        baseline_speedup = (
            base.get("kernels", {}).get(kernel, {}).get("speedup")
        )
        rows.append(
            CheckRow(
                "kernels", f"identical:{kernel}",
                "ok" if entry.get("identical") else "FAIL",
                current_value=entry.get("pairs"),
                detail=f"batch pairs == scalar pairs at points={points}",
            )
        )
        speedup = float(entry.get("speedup", 0.0))
        # Generous: a large fraction of the committed speedup or an
        # absolute 1.0 floor — a batch path merely *matching* scalar is
        # already a regression.  Quick mode runs far fewer points than
        # the committed baseline, where fixed per-call overhead eats a
        # genuinely larger share of the batch win, so its slack is wider.
        rel = 0.75 if quick else 0.5
        ok = baseline_speedup is None or at_least(
            float(baseline_speedup), speedup,
            rel=rel, floor=max(1.0, 0.5 * float(baseline_speedup)),
        )
        ok = ok and speedup >= 1.0
        rows.append(
            CheckRow(
                "kernels", f"speedup:{kernel}", "ok" if ok else "FAIL",
                baseline_value=baseline_speedup,
                current_value=round(speedup, 2),
                detail=f"fresh batch speedup at points={points}"
                       f" (rel slack {rel:g}, floor 1.0x)",
            )
        )
    equiv = fresh.get("equivalence", {})
    rows.append(
        CheckRow(
            "kernels", "equivalence-matrix",
            "ok" if equiv.get("all_identical") else "FAIL",
            current_value=len(equiv.get("cases", [])),
            detail="engine x method matrix identical to ground truth",
        )
    )
    return rows


def _identity_rows(name: str, base: dict, flags: list[tuple[str, bool]],
                   speedups: list[tuple[str, float, float]]) -> list[CheckRow]:
    """Committed-artifact invariants (quick mode's slow-bench stand-in)."""
    rows = [
        CheckRow(
            name, f"baseline:{metric}", "ok" if value else "FAIL",
            current_value=value,
            detail="committed artifact must record result identity",
        )
        for metric, value in flags
    ]
    for metric, value, floor in speedups:
        rows.append(
            CheckRow(
                name, f"baseline:{metric}",
                "ok" if value >= floor else "FAIL",
                baseline_value=floor, current_value=round(value, 3),
                detail="committed speedup above its minimum floor",
            )
        )
    return rows


def check_parallel(base: dict) -> list[CheckRow]:
    equiv = base.get("equivalence", {})
    flags = [("all_identical", bool(equiv.get("all_identical")))]
    flags += [
        (f"identical:{w}/x{pool.get('workers')}", bool(pool.get("identical")))
        for w, doc in sorted(base.get("workloads", {}).items())
        for pool in doc.get("pools", {}).values()
    ]
    return _identity_rows("parallel", base, flags, [])


def check_cache(base: dict, quick: bool) -> list[CheckRow]:
    flags = [("all_identical", bool(base.get("all_identical")))]
    flags += [
        (f"identical:{case.get('workload')}/{case.get('engine')}",
         bool(case.get("identical")))
        for case in base.get("cases", [])
    ]
    # Warm re-runs must beat cold by a wide margin in the committed
    # artifact; 1.5x is far under the recorded ~5-10x but above noise.
    speedups = [
        ("best_warm_speedup", float(base.get("best_warm_speedup", 0.0)), 1.5)
    ]
    rows = _identity_rows("cache", base, flags, speedups)
    if quick:
        rows.append(
            CheckRow("cache", "fresh-run", "skip",
                     detail="--quick: committed-artifact checks only")
        )
    else:
        from repro.bench.cache_study import run_cache_benchmark

        fresh = run_cache_benchmark(
            batches=6, scale=0.05, budget_bytes=base.get("budget_bytes")
        )
        rows.append(
            CheckRow(
                "cache", "fresh-identical",
                "ok" if fresh.get("all_identical") else "FAIL",
                detail="warm results identical to cold at reduced scale",
            )
        )
        rows.append(
            CheckRow(
                "cache", "fresh-warm-speedup",
                "ok"
                if float(fresh.get("best_warm_speedup", 0.0)) >= 1.2
                else "FAIL",
                current_value=round(float(fresh.get("best_warm_speedup", 0.0)), 2),
                detail="reduced-scale warm speedup above 1.2x floor",
            )
        )
    return rows


def check_columnar(base: dict, quick: bool) -> list[CheckRow]:
    flags = [("all_identical", bool(base.get("all_identical")))]
    speedups = [("speedup", float(base.get("speedup", 0.0)), 1.0)]
    rows = _identity_rows("columnar", base, flags, speedups)
    if quick:
        rows.append(
            CheckRow("columnar", "fresh-run", "skip",
                     detail="--quick: committed-artifact checks only")
        )
    else:
        from repro.bench.columnar_study import run_columnar_benchmark

        fresh = run_columnar_benchmark(
            points=20_000, polygons=500, repeat=1,
            seed=int(base.get("seed", 42)),
        )
        rows.append(
            CheckRow(
                "columnar", "fresh-identical",
                "ok" if fresh.get("all_identical") else "FAIL",
                current_value=fresh.get("matched_rows"),
                detail="columnar arm identical to object arm at reduced size",
            )
        )
    return rows


# -- orchestration -----------------------------------------------------------


def collect_checks(baseline_dir: str = ".", quick: bool = False,
                   explain_out: str | None = None) -> list[CheckRow]:
    """Run every check against the baselines in ``baseline_dir``."""
    baselines, rows = load_baselines(baseline_dir)
    rows += check_explain(explain_out)
    if "optimizer" in baselines:
        rows += check_optimizer(baselines["optimizer"])
    if "kernels" in baselines:
        rows += check_kernels(baselines["kernels"], quick)
    if "parallel" in baselines:
        rows += check_parallel(baselines["parallel"])
    if "cache" in baselines:
        rows += check_cache(baselines["cache"], quick)
    if "columnar" in baselines:
        rows += check_columnar(baselines["columnar"], quick)
    return rows


def render_regress(rows: list[CheckRow]) -> str:
    """The regression table plus a one-line verdict."""

    def cell(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    header = f"{'baseline':<10} {'check':<28} {'status':<6} " \
             f"{'committed':>12} {'current':>12}  detail"
    lines = ["perf-regression gate", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.baseline:<10} {row.metric:<28} {row.status:<6} "
            f"{cell(row.baseline_value):>12} {cell(row.current_value):>12}"
            f"  {row.detail}"
        )
    failures = [r for r in rows if r.status == "FAIL"]
    ok = sum(1 for r in rows if r.status == "ok")
    skipped = sum(1 for r in rows if r.status == "skip")
    lines.append("")
    if failures:
        lines.append(
            f"REGRESSION: {len(failures)} failed check(s), {ok} ok, "
            f"{skipped} skipped"
        )
    else:
        lines.append(f"no regressions: {ok} ok, {skipped} skipped")
    return "\n".join(lines)


def run_regress(baseline_dir: str = ".", quick: bool = False,
                explain_out: str | None = None,
                out: str | None = None) -> int:
    """The ``bench regress`` entry point; returns the process exit code."""
    rows = collect_checks(baseline_dir, quick=quick, explain_out=explain_out)
    print(render_regress(rows))
    if out:
        doc = {
            "schema_version": REGRESS_SCHEMA_VERSION,
            "quick": quick,
            "checks": [row.to_json() for row in rows],
            "failed": sum(1 for r in rows if r.status == "FAIL"),
        }
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
    return 1 if any(row.status == "FAIL" for row in rows) else 0
