"""Hierarchical trace spans with a zero-overhead disabled path.

A :class:`Span` records a named region of execution: real wall-clock
bounds (``perf_counter``), an accumulated *simulated* duration (set by
the instrumentation site from the cost model — the quantity the paper's
tables report), free-form attributes and resource-counter snapshots, and
child spans.  Spans nest per thread, mirroring how
:mod:`repro.spark.taskcontext` scopes :class:`TaskMetrics`.

The process-wide tracer defaults to **disabled**: ``tracer.span(...)``
then returns the shared :data:`NULL_SPAN` singleton whose every method is
a no-op, so instrumented hot paths (per-task, per-row-batch) pay one
attribute check and nothing else.  Enable capture either explicitly::

    tracer = set_tracer(Tracer())
    ... run a query ...
    spans = tracer.roots

or scoped::

    with tracing() as tracer:
        ... run a query ...
    spans = tracer.roots
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "NULL_SPAN", "get_tracer", "set_tracer", "tracing"]


class Span:
    """One traced region: wall bounds, simulated seconds, attrs, children."""

    __slots__ = ("name", "category", "start_wall", "end_wall", "sim_seconds",
                 "attrs", "children")

    def __init__(self, name: str, category: str = "phase"):
        self.name = name
        self.category = category
        self.start_wall = 0.0
        self.end_wall = 0.0
        self.sim_seconds = 0.0
        self.attrs: dict[str, Any] = {}
        self.children: list[Span] = []

    @property
    def wall_seconds(self) -> float:
        """Real elapsed time inside the span (0 while still open)."""
        return max(self.end_wall - self.start_wall, 0.0)

    def set_attr(self, key: str, value: Any) -> None:
        """Attach one attribute (overwrites)."""
        self.attrs[key] = value

    def add_sim(self, seconds: float) -> None:
        """Accrue simulated time into this span."""
        self.sim_seconds += seconds

    def add_counts(self, counts: dict[str, float]) -> None:
        """Merge resource-counter deltas (TaskMetrics-style) into attrs."""
        for resource, units in counts.items():
            self.attrs[resource] = self.attrs.get(resource, 0.0) + units

    def to_dict(self) -> dict:
        """Recursive plain-dict form (for JSON export)."""
        return {
            "name": self.name,
            "category": self.category,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"sim={self.sim_seconds:.6f}s, children={len(self.children)})"
        )


class _NullSpan:
    """Shared do-nothing span: the disabled tracer's entire overhead."""

    __slots__ = ()
    name = "<null>"
    category = "null"
    sim_seconds = 0.0
    wall_seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def add_sim(self, seconds: float) -> None:
        pass

    def add_counts(self, counts: dict[str, float]) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens/closes one real span on the tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, category: str, attrs: dict):
        self._tracer = tracer
        span = Span(name, category)
        if attrs:
            span.attrs.update(attrs)
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span.start_wall = time.perf_counter()
        return self._span

    def __exit__(self, *exc) -> bool:
        self._span.end_wall = time.perf_counter()
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects spans into per-thread trees; ``roots`` holds the forest."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.roots: list[Span] = []
        self._local = threading.local()

    # -- span lifecycle ---------------------------------------------------------

    def span(self, name: str, category: str = "phase", **attrs):
        """Open a traced region: ``with tracer.span("probe") as sp: ...``.

        Returns :data:`NULL_SPAN` (a no-op context manager) when disabled.
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, name, category, attrs)

    def event(self, name: str, category: str = "event",
              sim_seconds: float = 0.0, **attrs):
        """Record an instantaneous leaf span under the current span."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(name, category)
        span.start_wall = span.end_wall = time.perf_counter()
        span.sim_seconds = sim_seconds
        if attrs:
            span.attrs.update(attrs)
        self._attach(span)
        return span

    def current_span(self):
        """The innermost open span on this thread (or :data:`NULL_SPAN`)."""
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        return stack[-1] if stack else NULL_SPAN

    def reset(self) -> None:
        """Drop all collected spans (open spans keep recording)."""
        self.roots.clear()

    def graft(self, spans: list[Span]) -> None:
        """Re-parent spans recorded elsewhere under the current open span.

        Pool workers trace into their own fresh tracer and ship the root
        spans back with the task result; the driver grafts them so the
        profile tree looks exactly as if the task had run inline.  Wall
        clocks line up because ``perf_counter`` is CLOCK_MONOTONIC, which
        forked children share with the driver.
        """
        if not self.enabled or not spans:
            return
        for span in spans:
            self._attach(span)

    # -- internals -------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _attach(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _push(self, span: Span) -> None:
        self._attach(span)
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()


# The process-wide tracer: disabled until someone opts in.
_GLOBAL = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer instrumented code reports to."""
    return _GLOBAL


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-wide; returns it for chaining."""
    global _GLOBAL
    _GLOBAL = tracer
    return tracer


@contextlib.contextmanager
def tracing(enabled: bool = True) -> Iterator[Tracer]:
    """Install a fresh tracer for the block, restoring the previous after::

        with tracing() as tracer:
            run_query(...)
        trace = spans_to_chrome_trace(tracer.roots)
    """
    global _GLOBAL
    previous = _GLOBAL
    tracer = Tracer(enabled=enabled)
    _GLOBAL = tracer
    try:
        yield tracer
    finally:
        _GLOBAL = previous
