"""Structured event log: Spark-style durable, replayable telemetry.

Real Spark persists every scheduler event behind its UI as a JSONL event
log; real Impala exposes live per-fragment state over its webserver.
:class:`EventLog` is the reproduction's equivalent: a versioned stream of
structured events (:data:`EVENT_TYPES`) emitted by the Spark
``DAGScheduler``, the Impala coordinator, the core join API and the
executor-pool workers, appended to an in-memory list and — when a path is
given — written to a JSONL file line by line (flushed in small batches),
so the log survives the process.

Like the tracer and the metrics registry, the process-wide sink starts
**disabled**: instrumented code tests one boolean
(``get_event_log().enabled``) and does nothing else, so results,
counters and profiles are byte-identical with the sink off.  Enable it
scoped::

    with logging_events("events.jsonl") as log:
        run_query(...)
    # log.events holds the stream; events.jsonl holds the same lines

or attach a sink to one engine via its ``events_out=`` knob
(:class:`~repro.spark.context.SparkContext`,
:class:`~repro.impala.coordinator.ImpalaBackend`,
:class:`~repro.core.api.JoinConfig`).

Pool workers never write to the driver's sink (they cannot — separate
processes, and the forked file handle must stay untouched):
:func:`~repro.runtime.shipping.capture_observability` swaps in a fresh
buffering sink, the recorded events ship back inside the
:class:`~repro.runtime.shipping.ObsCapture`, and the driver replays them
in deterministic task order.  Consequently a pooled run's event *set* is
identical to the serial run's modulo the volatile placement/wall-clock
fields (:data:`VOLATILE_FIELDS`) and ``WorkerHeartbeat`` events, which is
exactly what :func:`normalize_events` strips.

The schema (``schema_version`` in the ``LogStart`` header; bump on any
incompatible field change — readers accept every version back to
:data:`MIN_SCHEMA_VERSION`):

=================  ========================================================
event              fields beyond ``event``
=================  ========================================================
LogStart           schema_version, source, unix_time
QueryStart         query, name, engine, wall_start
StageSubmitted     query, stage, name, num_tasks
TaskStart          query, stage, task, partition, label, worker, pid,
                   wall_start
TaskEnd            TaskStart's fields + wall_end, sim_seconds, counters,
                   failures
ShuffleWrite       query, stage, task, shuffle_id, bytes
FragmentStart      query, fragment, worker, pid, wall_start
FragmentEnd        FragmentStart's fields + wall_end, sim_seconds,
                   counters, row_batches
WorkerHeartbeat    worker, pid, wall_time, tasks_done
QueryEnd           query, name, sim_seconds, rows, wall_end
TaskRetried        query, stage, task, attempt, reason, backoff_seconds,
                   vworker                                  *(since v2)*
TaskSpeculated     query, stage, task, factor, sim_seconds,
                   effective_seconds, median_seconds, winner *(since v2)*
WorkerBlacklisted  query, vworker, failures, reason          *(since v2)*
StageRecomputed    query, stage, shuffle_id, map_partition, reason
                                                             *(since v2)*
QueryRestarted     query, restart, reason, fragment          *(since v2)*
CacheHit           kind, key, size_bytes                     *(since v3)*
CacheMiss          kind, key                                 *(since v3)*
CacheEvict         kind, key, size_bytes, reason             *(since v3)*
=================  ========================================================

``query``/``stage`` ids are small integers allocated driver-side
(:meth:`EventLog.next_id`); ``task`` is the task's index within its
stage; ``partition`` is the split / tile id the task processed (the field
that makes stragglers attributable to hot tiles); ``wall_*`` values are
``perf_counter`` readings (CLOCK_MONOTONIC, shared with forked workers).

The ``since v2`` recovery events (emitted by
:mod:`repro.runtime.recovery`, the Spark scheduler's lineage recompute
and the Impala coordinator's restart loop) carry ``vworker`` — the fault
plan's deterministic *virtual* worker id — rather than the volatile
physical ``worker`` field, so they survive :func:`normalize_events`
intact and pin byte-identically across executor counts.

The ``since v3`` cache events (emitted by
:class:`repro.cache.manager.CacheManager`) describe whether a query
*reused* an artifact — inherently dependent on what ran before in the
process — so :func:`normalize_events` drops them entirely, preserving
the cache-on vs cache-off stream-identity invariant (DESIGN.md §12).
"""

from __future__ import annotations

import contextlib
import json
import time
from typing import Any, Iterator

from repro.errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "MIN_SCHEMA_VERSION",
    "EVENT_TYPES",
    "RECOVERY_EVENT_TYPES",
    "CACHE_EVENT_TYPES",
    "VOLATILE_FIELDS",
    "EventLog",
    "get_event_log",
    "set_event_log",
    "logging_events",
    "install_event_log",
    "read_events",
    "normalize_events",
    "check_task_pairing",
]

# v2 added the recovery events (TaskRetried, TaskSpeculated,
# WorkerBlacklisted, StageRecomputed, QueryRestarted); v3 added the
# cross-query cache events (CacheHit, CacheMiss, CacheEvict).  Older
# logs are strict subsets and remain readable.
SCHEMA_VERSION = 3
MIN_SCHEMA_VERSION = 1

# How many events may ride in the userspace file buffer before a flush.
FLUSH_EVERY = 32

# The recovery decisions of repro.runtime.recovery, the Spark lineage
# recompute, and the Impala restart loop (schema v2).
RECOVERY_EVENT_TYPES = frozenset(
    {
        "TaskRetried",
        "TaskSpeculated",
        "WorkerBlacklisted",
        "StageRecomputed",
        "QueryRestarted",
    }
)

# Cross-query cache bookkeeping (schema v3).  Whether a lookup hits
# depends on process history, not on the query itself, so these are
# stripped by normalize_events (cache-on and cache-off runs of one query
# must produce equal normalized streams).
CACHE_EVENT_TYPES = frozenset({"CacheHit", "CacheMiss", "CacheEvict"})

EVENT_TYPES = (
    frozenset(
        {
            "LogStart",
            "QueryStart",
            "StageSubmitted",
            "TaskStart",
            "TaskEnd",
            "ShuffleWrite",
            "FragmentStart",
            "FragmentEnd",
            "WorkerHeartbeat",
            "QueryEnd",
        }
    )
    | RECOVERY_EVENT_TYPES
    | CACHE_EVENT_TYPES
)

# Fields whose values legitimately differ between a serial run and a
# pooled run of the same query (or between two wall-clock runs): real
# clocks and physical task placement.  Everything else is deterministic.
VOLATILE_FIELDS = ("wall_start", "wall_end", "wall_time", "unix_time", "pid", "worker")


class EventLog:
    """An append-only sink of structured events, optionally JSONL-backed.

    ``emit`` is a strict no-op while ``enabled`` is False — one boolean
    test, no allocation.  With a ``path``, every event is written as one
    JSON line after a ``LogStart`` header line carrying
    :data:`SCHEMA_VERSION`; the stream is flushed every
    :data:`FLUSH_EVERY` events and on :meth:`close`, so a crash loses at
    most the tail of the log while the flush syscall stays off the
    per-event hot path (the overhead guard in ``repro.bench parallel``
    bounds the whole sink at <10% of engine wall clock).
    """

    def __init__(self, path: str | None = None, enabled: bool = True):
        self.enabled = enabled
        self.path = path
        self.events: list[dict] = []
        self._handle = None
        self._ids: dict[str, int] = {}
        self._unflushed = 0

    # -- id allocation (driver-side only) ---------------------------------------

    def next_id(self, kind: str) -> int:
        """Allocate the next small integer id for ``kind`` (1-based)."""
        value = self._ids.get(kind, 0) + 1
        self._ids[kind] = value
        return value

    # -- write side -------------------------------------------------------------

    def emit(self, event: str, **fields: Any) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        record = {"event": event}
        record.update(fields)
        self._write(record)

    def emit_raw(self, record: dict) -> None:
        """Replay an already-built event (a worker capture's shipment)."""
        if not self.enabled:
            return
        self._write(record)

    def _write(self, record: dict) -> None:
        self.events.append(record)
        if self.path is None:
            return
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
            header = {
                "event": "LogStart",
                "schema_version": SCHEMA_VERSION,
                "source": "repro.obs.events",
                "unix_time": time.time(),
            }
            self._handle.write(json.dumps(header, separators=(",", ":")) + "\n")
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        # Near-write-through: batch the flush syscall so enabling the log
        # stays cheap, but never let more than FLUSH_EVERY events ride in
        # the userspace buffer (a crash mid-query keeps all but the tail;
        # forked workers exit via os._exit and never re-flush the
        # inherited buffer).
        self._unflushed += 1
        if self._unflushed >= FLUSH_EVERY:
            self._handle.flush()
            self._unflushed = 0

    def close(self) -> None:
        """Flush and close the backing file (the in-memory event list stays)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._unflushed = 0


# The process-wide sink instrumented code reports to: disabled until
# someone opts in, exactly like the tracer and the metrics registry.
_SINK = EventLog(enabled=False)


def get_event_log() -> EventLog:
    """The process-wide event sink instrumented code reports to."""
    return _SINK


def set_event_log(log: EventLog) -> EventLog:
    """Install ``log`` process-wide; returns it for chaining."""
    global _SINK
    _SINK = log
    return log


@contextlib.contextmanager
def logging_events(path: str | None = None, enabled: bool = True) -> Iterator[EventLog]:
    """Install a fresh sink for the block, restoring the previous after::

        with logging_events("events.jsonl") as log:
            run_query(...)
        assert any(e["event"] == "QueryEnd" for e in log.events)
    """
    log = EventLog(path=path, enabled=enabled)
    with install_event_log(log):
        try:
            yield log
        finally:
            log.close()


@contextlib.contextmanager
def install_event_log(log: EventLog | None) -> Iterator[EventLog]:
    """Temporarily install ``log`` as the process-wide sink.

    ``None`` leaves the current sink in place — engine ``events_out``
    knobs use this so an unset knob composes with an enclosing
    :func:`logging_events` block instead of silencing it.
    """
    global _SINK
    if log is None:
        yield _SINK
        return
    previous = _SINK
    _SINK = log
    try:
        yield log
    finally:
        _SINK = previous


# -- replay side ----------------------------------------------------------------


def read_events(path: str) -> list[dict]:
    """Load a JSONL event log, validating the ``LogStart`` header.

    Accepts every schema version from :data:`MIN_SCHEMA_VERSION` up to
    :data:`SCHEMA_VERSION` (older logs carry a subset of today's event
    types, so the read path is forward-compatible by construction) and
    rejects both out-of-range versions and records whose event type this
    build does not know, with messages naming the offending line.
    Raises :class:`ReproError` on a missing/foreign header too.
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{line_no}: not JSON: {exc}") from exc
            if not isinstance(record, dict) or "event" not in record:
                raise ReproError(f"{path}:{line_no}: not an event record")
            kind = record["event"]
            if kind not in EVENT_TYPES:
                known = ", ".join(sorted(EVENT_TYPES))
                raise ReproError(
                    f"{path}:{line_no}: unknown event type {kind!r} "
                    f"(this build understands: {known}); was the log "
                    "written by a newer schema version?"
                )
            events.append(record)
    if not events or events[0].get("event") != "LogStart":
        raise ReproError(f"{path}: missing LogStart header line")
    version = events[0].get("schema_version")
    if (
        not isinstance(version, int)
        or not MIN_SCHEMA_VERSION <= version <= SCHEMA_VERSION
    ):
        raise ReproError(
            f"{path}: event schema version {version!r} unsupported "
            f"(this build reads versions {MIN_SCHEMA_VERSION}"
            f"..{SCHEMA_VERSION})"
        )
    return events


def normalize_events(events: list[dict]) -> list[dict]:
    """The deterministic core of an event stream, for replay comparisons.

    Drops the ``LogStart`` header, ``WorkerHeartbeat`` events (pure
    placement/liveness, absent from serial runs) and the
    :data:`CACHE_EVENT_TYPES` (reuse bookkeeping, dependent on process
    history rather than the query), and strips :data:`VOLATILE_FIELDS`
    from the rest.  Two runs of the same query with different
    ``executors`` — or with the cache on vs off — produce equal
    normalized streams — the event-log flavour of the byte-identity
    invariant.
    """
    normalized = []
    for record in events:
        kind = record.get("event")
        if kind in ("LogStart", "WorkerHeartbeat") or kind in CACHE_EVENT_TYPES:
            continue
        normalized.append(
            {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}
        )
    return normalized


def check_task_pairing(events: list[dict]) -> list[str]:
    """Validate start/end pairing; returns human-readable problems.

    Every ``TaskStart`` must have exactly one ``TaskEnd`` with the same
    ``(query, stage, task)`` key (and vice versa); same for
    ``FragmentStart``/``FragmentEnd`` on ``(query, fragment)``.  An empty
    return value means the log is well-formed.
    """
    problems: list[str] = []
    for start_kind, end_kind, keys in (
        ("TaskStart", "TaskEnd", ("query", "stage", "task")),
        ("FragmentStart", "FragmentEnd", ("query", "fragment")),
    ):
        starts: dict[tuple, int] = {}
        ends: dict[tuple, int] = {}
        for record in events:
            if record.get("event") == start_kind:
                key = tuple(record.get(k) for k in keys)
                starts[key] = starts.get(key, 0) + 1
            elif record.get("event") == end_kind:
                key = tuple(record.get(k) for k in keys)
                ends[key] = ends.get(key, 0) + 1
        for key, count in starts.items():
            if ends.get(key, 0) != count:
                problems.append(
                    f"{start_kind} {key} has {count} start(s) but "
                    f"{ends.get(key, 0)} end(s)"
                )
        for key, count in ends.items():
            if key not in starts:
                problems.append(f"{end_kind} {key} has no matching {start_kind}")
    return problems
